//! Emit `BENCH_fleet_search.json`: wall-clock of NSGA-II over the
//! cross-product fleet-plan space (both paper sites) with cohorts routed
//! through the batched interleaved
//! [`FleetEvaluator`](mgopt_microgrid::FleetEvaluator) pass, versus the
//! same search forced onto the optimizer's default rayon-scalar fallback
//! (one single-plan pass per unseen genome) — so the batching speedup on
//! the *search* path is measured, not assumed.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin fleet_search
//! ```
//!
//! Writes the artifact to the repository root (next to `BENCH_fleet.json`)
//! and prints the same numbers to stdout. `MGOPT_FAST=1` shrinks the
//! per-site spaces for smoke runs.

use std::path::PathBuf;
use std::time::Instant;

use mgopt_bench::{TelemetrySection, ThreadScaling};
use mgopt_core::{FleetProblem, FleetScenario};
use mgopt_microgrid::BatchBackend;
use mgopt_optimizer::{Nsga2Config, Nsga2Optimizer, Problem};
use mgopt_telemetry as telemetry;
use serde::Serialize;

/// The artifact schema. `agreement` records that the batched and scalar
/// searches produced bit-identical trial histories (same seeds, and the
/// fleet engine's cohort results are pinned to single-plan runs). The
/// `telemetry_*` fields are the instrumentation A/B: the same batched
/// search re-timed with collection on, plus the collected section.
#[derive(Debug, Serialize)]
struct FleetSearchBench {
    sites: Vec<String>,
    space_per_site: Vec<usize>,
    plan_space: usize,
    population: usize,
    max_trials: usize,
    unique_evaluations: usize,
    cache_hit_rate: f64,
    front_size: usize,
    samples: usize,
    batched_ms_min: f64,
    scalar_ms_min: f64,
    speedup: f64,
    agreement: bool,
    threads: usize,
    /// Whether the batched timings above ran the SIMD chunk walk (the
    /// `MGOPT_SIMD` toggle at bench time).
    simd: bool,
    /// The batched search forced onto the SIMD walk, min ms.
    simd_ms_min: f64,
    /// The batched search forced onto the scalar walk, min ms.
    scalar_walk_ms_min: f64,
    /// `scalar_walk_ms_min / simd_ms_min` on the search path. Search time
    /// includes NSGA-II bookkeeping, so this is lower than the raw kernel
    /// gain in `BENCH_sweep.json`.
    simd_speedup: f64,
    /// `true` when the forced-SIMD and forced-scalar searches produced
    /// bit-identical trial histories (same seeds + bit-identical engines).
    simd_agreement: bool,
    /// Full batched search re-timed at each `MGOPT_THREADS` pool size.
    scaling: Vec<ThreadScaling>,
    telemetry_enabled_ms_min: f64,
    telemetry_overhead_pct: f64,
    telemetry: TelemetrySection,
}

/// Hides a problem's batched override so cohorts fall back to the
/// optimizer's default rayon-parallel scalar path — the baseline every
/// batched engine is measured against.
struct ScalarFallback<'a>(&'a FleetProblem<'a>);

impl Problem for ScalarFallback<'_> {
    fn dims(&self) -> &[usize] {
        self.0.dims()
    }

    fn n_objectives(&self) -> usize {
        self.0.n_objectives()
    }

    fn evaluate(&self, genome: &[u16]) -> Vec<f64> {
        self.0.evaluate(genome)
    }
}

use mgopt_bench::min_ms;

fn main() {
    // Resolve MGOPT_TRACE first (installing any requested sink), then force
    // collection off so the A/B timing below starts from the disabled path.
    telemetry::enabled();
    telemetry::set_enabled(false);

    let mut scenario = FleetScenario::paper();
    for m in &mut scenario.members {
        m.scenario.space = mgopt_bench::space();
    }
    let fleet = scenario.prepare();
    let problem = FleetProblem::new(&fleet);
    let scalar = ScalarFallback(&problem);
    let config = Nsga2Config {
        population_size: 50,
        max_trials: 350,
        seed: 42,
        ..Nsga2Config::default()
    };
    let optimizer = Nsga2Optimizer::new(config.clone());
    let samples = 7usize;

    // Warm-up + agreement: identical seeds must yield identical histories.
    let batched_run = optimizer.run(&problem);
    let scalar_run = optimizer.run(&scalar);
    let agreement = batched_run.history == scalar_run.history;
    assert!(
        agreement,
        "batched and scalar fleet searches diverged — the fleet engine \
         broke its cohort/single-plan agreement guarantee"
    );

    let mut batched_ms = Vec::with_capacity(samples);
    let mut scalar_ms = Vec::with_capacity(samples);
    // Alternate A/B order per sample so clock drift cannot systematically
    // favor either path.
    for k in 0..samples {
        let time = |f: &dyn Fn() -> usize, out: &mut Vec<f64>| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            out.push(t0.elapsed().as_secs_f64() * 1e3);
        };
        let run_batched = || optimizer.run(&problem).history.len();
        let run_scalar = || optimizer.run(&scalar).history.len();
        if k % 2 == 0 {
            time(&run_batched, &mut batched_ms);
            time(&run_scalar, &mut scalar_ms);
        } else {
            time(&run_scalar, &mut scalar_ms);
            time(&run_batched, &mut batched_ms);
        }
    }

    let batched_min = min_ms(&batched_ms);
    let scalar_min = min_ms(&scalar_ms);

    // SIMD vs scalar chunk walk on the search path: the same NSGA-II run
    // with the fleet engine's backend forced either way. Bit-identical
    // engines + identical seeds must reproduce the same trial history.
    let simd_problem = FleetProblem::new(&fleet).with_backend(BatchBackend::Simd);
    let scalar_walk_problem = FleetProblem::new(&fleet).with_backend(BatchBackend::Scalar);
    let simd_agreement =
        optimizer.run(&simd_problem).history == optimizer.run(&scalar_walk_problem).history;
    assert!(
        simd_agreement,
        "SIMD-backed search diverged from the scalar-walk search"
    );
    let mut simd_ms = Vec::with_capacity(samples);
    let mut scalar_walk_ms = Vec::with_capacity(samples);
    for k in 0..samples {
        let time = |f: &dyn Fn() -> usize, out: &mut Vec<f64>| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            out.push(t0.elapsed().as_secs_f64() * 1e3);
        };
        let run_simd = || optimizer.run(&simd_problem).history.len();
        let run_scalar_walk = || optimizer.run(&scalar_walk_problem).history.len();
        if k % 2 == 0 {
            time(&run_simd, &mut simd_ms);
            time(&run_scalar_walk, &mut scalar_walk_ms);
        } else {
            time(&run_scalar_walk, &mut scalar_walk_ms);
            time(&run_simd, &mut simd_ms);
        }
    }
    let simd_min = min_ms(&simd_ms);
    let scalar_walk_min = min_ms(&scalar_walk_ms);

    // Multi-thread scaling of the batched search.
    let scaling = mgopt_bench::scaling_sweep(&mgopt_bench::thread_counts(), 3, || {
        std::hint::black_box(optimizer.run(&problem).history.len());
    });

    // Telemetry A/B: the same batched search with collection ON (spans,
    // counters, and events to any MGOPT_TRACE sink). The disabled-path
    // baseline is `batched_min` above — the overhead of telemetry-off
    // instrumentation is already inside it, and the enabled re-run bounds
    // the cost of switching collection on.
    telemetry::reset_stats();
    telemetry::set_enabled(true);
    let mut enabled_ms = Vec::with_capacity(3);
    for _ in 0..3 {
        let t0 = Instant::now();
        std::hint::black_box(optimizer.run(&problem).history.len());
        enabled_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let section = mgopt_bench::collect_telemetry_section();
    telemetry::set_enabled(false);
    let enabled_min = min_ms(&enabled_ms);
    let overhead_pct = (enabled_min / batched_min - 1.0) * 1e2;

    let bench = FleetSearchBench {
        sites: fleet.names.clone(),
        space_per_site: problem.dims().to_vec(),
        plan_space: problem.space_size(),
        population: config.population_size,
        max_trials: config.max_trials,
        unique_evaluations: batched_run.unique_evaluations,
        cache_hit_rate: batched_run.cache_hit_rate().unwrap_or(0.0),
        front_size: batched_run.pareto_front().len(),
        samples,
        batched_ms_min: batched_min,
        scalar_ms_min: scalar_min,
        speedup: scalar_min / batched_min,
        agreement,
        threads: rayon::current_num_threads(),
        simd: mgopt_microgrid::simd_enabled(),
        simd_ms_min: simd_min,
        scalar_walk_ms_min: scalar_walk_min,
        simd_speedup: scalar_walk_min / simd_min,
        simd_agreement,
        scaling,
        telemetry_enabled_ms_min: enabled_min,
        telemetry_overhead_pct: overhead_pct,
        telemetry: section,
    };

    println!(
        "NSGA-II over {} fleet plans ({} trials, {} unique): batched {:.1} ms, \
         rayon-scalar fallback {:.1} ms, speedup {:.2}x",
        bench.plan_space,
        bench.max_trials,
        bench.unique_evaluations,
        batched_min,
        scalar_min,
        bench.speedup
    );
    println!(
        "memo cache: {} hits / {} misses over {} sampled trials ({:.1}% hit rate)",
        batched_run.cache_hits,
        batched_run.cache_misses,
        batched_run.sampled_trials,
        bench.cache_hit_rate * 1e2
    );
    println!(
        "simd-backed search {:.1} ms vs scalar-walk search {:.1} ms: {:.2}x, \
         histories identical: {}",
        simd_min, scalar_walk_min, bench.simd_speedup, simd_agreement
    );
    for p in &bench.scaling {
        println!(
            "threads {} (effective {}): {:.1} ms",
            p.threads_requested, p.threads_effective, p.ms_min
        );
    }
    println!(
        "telemetry: enabled run {enabled_min:.1} ms vs disabled {batched_min:.1} ms \
         ({overhead_pct:+.1}% — timing noise dominates at near-zero overhead)"
    );
    for stage in &bench.telemetry.stages {
        println!(
            "  {:<16} {:>6} spans {:>10.1} ms (CPU)",
            stage.name, stage.calls, stage.total_ms
        );
    }
    println!(
        "  engine throughput {:.2e} candidate-steps/s of kernel CPU time",
        bench.telemetry.evals_per_sec
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet_search.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_fleet_search.json");
    println!("[artifact] {}", path.display());
}

//! Pins the fleet-plan search stack: `FleetProblem` + NSGA-II must
//! recover the *exact* Pareto front that the exhaustive interleaved
//! `fleet_sweep` produces on an `MGOPT_FAST`-sized grid, and under a peak
//! concurrent-import cap every plan the search returns must satisfy the
//! cap (constraint-dominance end to end).

use std::collections::BTreeSet;

use microgrid_opt::optimizer::{exhaustive_search, non_dominated_indices, Problem};
use microgrid_opt::prelude::*;

/// The paper fleet on a 2x2x2-per-site grid: 8 compositions per member,
/// 64 fleet plans — small enough that exhaustive truth is instant and the
/// genetic search can be required to be *exact*, not just close.
fn tiny_fleet() -> PreparedFleet {
    let mut scenario = FleetScenario::paper();
    for m in &mut scenario.members {
        m.scenario.space = CompositionSpace {
            wind_choices: vec![0, 4],
            solar_choices_kw: vec![0.0, 16_000.0],
            battery_choices_kwh: vec![0.0, 22_500.0],
        };
    }
    scenario.prepare()
}

/// Genomes of the true fleet Pareto front, from exhaustive sweep results.
fn exhaustive_front(
    fleet: &PreparedFleet,
    problem: &FleetProblem<'_>,
    results: &[FleetResult],
) -> BTreeSet<Vec<u16>> {
    assert_eq!(results.len(), problem.space_size());
    assert_eq!(fleet.n_sites(), 2);
    let objectives: Vec<Vec<f64>> = results
        .iter()
        .map(|r| vec![r.fleet.operational_t_per_day, r.fleet.embodied_t])
        .collect();
    non_dominated_indices(&objectives)
        .into_iter()
        .map(|i| problem.genome_at(i))
        .collect()
}

fn paper_nsga2(seed: u64, space: usize) -> Study {
    Study::new(Sampler::Nsga2(Nsga2Config {
        population_size: 50,
        max_trials: (4 * space).max(350),
        seed,
        ..Nsga2Config::default()
    }))
}

#[test]
fn nsga2_recovers_exact_exhaustive_fleet_front() {
    let fleet = tiny_fleet();
    let problem = FleetProblem::new(&fleet);
    let sweep = fleet_sweep(&fleet, FleetAssignment::CrossProduct);
    let truth = exhaustive_front(&fleet, &problem, &sweep);
    assert!(
        truth.len() >= 5,
        "degenerate ground-truth front: {}",
        truth.len()
    );

    let result = paper_nsga2(42, problem.space_size()).optimize(&problem);
    let found: BTreeSet<Vec<u16>> = result
        .pareto_front()
        .iter()
        .map(|t| t.genome.clone())
        .collect();
    assert_eq!(
        found, truth,
        "NSGA-II front differs from the exhaustive fleet-sweep front"
    );

    // The sweep's plan order and the problem's genome order agree, so the
    // recovered objectives are bit-identical to the sweep's, not merely
    // front-equivalent.
    for t in result.pareto_front() {
        let r = &sweep[problem.index_of(&t.genome)];
        assert_eq!(t.objectives[0], r.fleet.operational_t_per_day);
        assert_eq!(t.objectives[1], r.fleet.embodied_t);
    }
}

#[test]
fn exhaustive_search_over_fleet_problem_matches_fleet_sweep() {
    // The optimizer-side exhaustive sampler and the core-side fleet_sweep
    // enumerate the same plans in the same order with identical scores.
    let fleet = tiny_fleet();
    let problem = FleetProblem::new(&fleet);
    let sweep = fleet_sweep(&fleet, FleetAssignment::CrossProduct);
    let result = exhaustive_search(&problem);
    assert_eq!(result.history.len(), sweep.len());
    for (t, r) in result.history.iter().zip(&sweep) {
        assert_eq!(problem.plan(&t.genome), r.plan());
        assert_eq!(t.objectives[0], r.fleet.operational_t_per_day);
        assert_eq!(t.objectives[1], r.fleet.embodied_t);
        assert!(t.violations.is_empty(), "unconstrained problem");
    }
}

#[test]
fn capped_search_returns_only_cap_satisfying_plans() {
    let fleet = tiny_fleet();
    let sweep = fleet_sweep(&fleet, FleetAssignment::CrossProduct);
    let peaks: Vec<f64> = sweep
        .iter()
        .map(|r| r.fleet.peak_concurrent_import_kw.expect("tracked"))
        .collect();
    let min_peak = peaks.iter().copied().fold(f64::INFINITY, f64::min);
    let max_peak = peaks.iter().copied().fold(0.0f64, f64::max);
    // A binding cap: some plans feasible, the grid-heavy ones not.
    let cap_kw = min_peak + 0.25 * (max_peak - min_peak);
    assert!(peaks.iter().any(|&p| p <= cap_kw));
    assert!(peaks.iter().any(|&p| p > cap_kw));

    let problem = FleetProblem::new(&fleet).with_peak_cap_kw(cap_kw);
    let result = paper_nsga2(7, problem.space_size()).optimize(&problem);
    let front = result.pareto_front();
    assert!(!front.is_empty());
    for t in &front {
        assert!(t.is_feasible(), "infeasible plan on the front: {t:?}");
        // Re-check against the independently swept peak, not the
        // problem's own bookkeeping.
        let peak = peaks[problem.index_of(&t.genome)];
        assert!(
            peak <= cap_kw,
            "plan {:?} breaks the cap: {peak} > {cap_kw} kW",
            t.genome
        );
    }

    // The constrained front equals the non-dominated subset of the
    // *feasible* exhaustive plans.
    let feasible: Vec<usize> = (0..sweep.len()).filter(|&i| peaks[i] <= cap_kw).collect();
    let objectives: Vec<Vec<f64>> = feasible
        .iter()
        .map(|&i| {
            vec![
                sweep[i].fleet.operational_t_per_day,
                sweep[i].fleet.embodied_t,
            ]
        })
        .collect();
    let truth: BTreeSet<Vec<u16>> = non_dominated_indices(&objectives)
        .into_iter()
        .map(|k| problem.genome_at(feasible[k]))
        .collect();
    let found: BTreeSet<Vec<u16>> = front.iter().map(|t| t.genome.clone()).collect();
    assert_eq!(
        found, truth,
        "constrained front differs from feasible truth"
    );
}

#[test]
fn infeasible_cap_degrades_to_least_violating_plans() {
    // A cap below every plan's peak: nothing is feasible, and the front
    // must collapse onto the minimum-violation (= minimum-peak) plans
    // instead of silently returning cap-breaking "optima" as feasible.
    let fleet = tiny_fleet();
    let sweep = fleet_sweep(&fleet, FleetAssignment::CrossProduct);
    let peaks: Vec<f64> = sweep
        .iter()
        .map(|r| r.fleet.peak_concurrent_import_kw.expect("tracked"))
        .collect();
    let min_peak = peaks.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(min_peak > 0.0, "tiny grid should not fully cover the load");

    let problem = FleetProblem::new(&fleet).with_peak_cap_kw(min_peak * 0.5);
    let result = paper_nsga2(3, problem.space_size()).optimize(&problem);
    let front = result.pareto_front();
    assert!(!front.is_empty());
    for t in &front {
        assert!(!t.is_feasible());
        let peak = peaks[problem.index_of(&t.genome)];
        assert!(
            (peak - min_peak).abs() < 1e-9,
            "front member is not a least-violating plan: peak {peak} vs {min_peak}"
        );
    }
}

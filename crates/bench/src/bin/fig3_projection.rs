//! Regenerates **Figure 3**: naive 20-year projection of cumulative
//! emissions for the five candidates per site, including the year at which
//! the grid-only baseline becomes the worst configuration (~7 y Houston,
//! ~12 y Berkeley in the paper).
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin fig3_projection
//! ```

use mgopt_core::experiments::{fig3, tables};
use mgopt_core::report;

fn main() {
    for scenario in [mgopt_bench::houston(), mgopt_bench::berkeley()] {
        let table = tables::run(&scenario);
        let out = fig3::run(&table.site, &table.rows, 20);
        print!("{}", report::render_fig3(&out));
        println!();
        let name = format!(
            "fig3_{}",
            if out.site.starts_with("Houston") {
                "houston"
            } else {
                "berkeley"
            }
        );
        mgopt_bench::write_artifact(&name, &out);
    }
}

//! Marginal carbon intensity — the accounting alternative the paper
//! deliberately does **not** use.
//!
//! §4.1: "we calculate operational carbon emissions using average carbon
//! intensity data … rather than alternative metrics such as marginal
//! carbon intensity", citing Wiesner & Kao (SIGMETRICS PER 2025), who
//! argue marginal CI is a poor metric for both carbon accounting and grid
//! flexibility. This module implements a synthetic marginal-CI estimate
//! anyway so users can *quantify* how much the metric choice changes the
//! paper's conclusions (it changes them a lot — which is the point).
//!
//! Model: the marginal unit is almost always a gas plant (CCGT ~390
//! g/kWh) except during renewable-surplus hours (average CI far below its
//! mean), when curtailed renewables are marginal (~0 g/kWh), and during
//! scarcity hours (average CI far above its mean), when peakers set the
//! margin (~650 g/kWh).

use mgopt_units::TimeSeries;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic marginal-CI estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginalModel {
    /// Marginal intensity of the usual price-setting unit (CCGT), g/kWh.
    pub ccgt_g_per_kwh: f64,
    /// Marginal intensity during scarcity (peakers/coal), g/kWh.
    pub peaker_g_per_kwh: f64,
    /// Average-CI fraction of its mean below which renewables are assumed
    /// marginal (surplus hours).
    pub surplus_threshold: f64,
    /// Average-CI fraction of its mean above which peakers are assumed
    /// marginal.
    pub scarcity_threshold: f64,
}

impl Default for MarginalModel {
    fn default() -> Self {
        Self {
            ccgt_g_per_kwh: 390.0,
            peaker_g_per_kwh: 650.0,
            surplus_threshold: 0.45,
            scarcity_threshold: 1.35,
        }
    }
}

impl MarginalModel {
    /// Derive a marginal-CI series from an average-CI series.
    pub fn derive(&self, average_ci: &TimeSeries) -> TimeSeries {
        let mean = average_ci.mean();
        average_ci.map(|avg| {
            let rel = avg / mean;
            if rel < self.surplus_threshold {
                0.0
            } else if rel > self.scarcity_threshold {
                self.peaker_g_per_kwh
            } else {
                self.ccgt_g_per_kwh
            }
        })
    }
}

/// Compare operational emissions of an import series under average vs
/// marginal accounting. Returns `(average_kg, marginal_kg)`.
pub fn compare_accounting(
    grid_import_kw: &TimeSeries,
    average_ci: &TimeSeries,
    model: &MarginalModel,
) -> (f64, f64) {
    let marginal_ci = model.derive(average_ci);
    let avg = crate::accounting::operational_emissions(grid_import_kw, average_ci).kg();
    let mar = crate::accounting::operational_emissions(grid_import_kw, &marginal_ci).kg();
    (avg, mar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::{CarbonIntensityModel, GridRegion};
    use mgopt_units::SimDuration;

    fn caiso_ci() -> TimeSeries {
        CarbonIntensityModel::for_region(GridRegion::Caiso)
            .generate(SimDuration::from_hours(1.0), 42)
    }

    #[test]
    fn marginal_takes_three_levels() {
        let ci = caiso_ci();
        let marginal = MarginalModel::default().derive(&ci);
        let mut seen = std::collections::BTreeSet::new();
        for &v in marginal.values() {
            seen.insert(v as i64);
        }
        assert!(
            seen.contains(&0),
            "surplus hours exist in CAISO (duck curve)"
        );
        assert!(seen.contains(&390), "CCGT hours dominate");
        assert!(seen.len() <= 3);
    }

    #[test]
    fn marginal_mostly_ccgt() {
        let ci = caiso_ci();
        let marginal = MarginalModel::default().derive(&ci);
        let ccgt_hours = marginal.values().iter().filter(|&&v| v == 390.0).count();
        assert!(
            ccgt_hours as f64 > 0.5 * marginal.len() as f64,
            "{ccgt_hours} CCGT hours"
        );
    }

    #[test]
    fn flat_load_emissions_differ_substantially_between_metrics() {
        // The Wiesner & Kao point: metric choice dominates the result.
        let ci = caiso_ci();
        let load = TimeSeries::constant_year(SimDuration::from_hours(1.0), 1_620.0);
        let (avg, mar) = compare_accounting(&load, &ci, &MarginalModel::default());
        assert!(avg > 0.0 && mar > 0.0);
        let ratio = mar / avg;
        assert!(
            !(0.95..=1.05).contains(&ratio),
            "marginal accounting should visibly diverge, ratio {ratio}"
        );
        // Marginal is higher for a flat load on a low-average grid: most
        // hours the margin is gas even when the average is clean.
        assert!(ratio > 1.0, "ratio {ratio}");
    }

    #[test]
    fn midday_solar_load_is_free_under_marginal_only() {
        // A load running only in deep-surplus hours: near-zero marginal
        // emissions, non-zero average emissions.
        let ci = caiso_ci();
        let mean = ci.mean();
        let load = TimeSeries::new(
            SimDuration::from_hours(1.0),
            ci.values()
                .iter()
                .map(|&c| if c < 0.45 * mean { 1_000.0 } else { 0.0 })
                .collect(),
        );
        if load.sum() > 0.0 {
            let (avg, mar) = compare_accounting(&load, &ci, &MarginalModel::default());
            assert!(avg > 0.0);
            assert_eq!(mar, 0.0, "surplus hours are marginally free");
        }
    }

    #[test]
    fn thresholds_configurable() {
        let ci = caiso_ci();
        let strict = MarginalModel {
            surplus_threshold: 0.0, // never surplus
            scarcity_threshold: f64::INFINITY,
            ..MarginalModel::default()
        };
        let marginal = strict.derive(&ci);
        assert!(marginal.values().iter().all(|&v| v == 390.0));
    }
}

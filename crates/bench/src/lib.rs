//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it from scratch and writes a JSON artifact next to the
//! printed report:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_pareto` | Figure 2 (both sites) |
//! | `table1_2_candidates` | Tables 1 and 2 |
//! | `fig3_projection` | Figure 3 (both sites) |
//! | `fig4_coverage` | Figure 4 (Houston) |
//! | `search_performance` | §4.4 comparison |
//! | `beyond_carbon` | §4.3 additional objectives |
//!
//! Set `MGOPT_FAST=1` to run on a reduced composition space (for smoke
//! tests); the default regenerates the full 1,089-point studies.

use std::path::PathBuf;

use mgopt_core::{PreparedScenario, ScenarioConfig};
use mgopt_microgrid::CompositionSpace;
use serde::Serialize;

/// `true` when `MGOPT_FAST=1` (reduced spaces for smoke runs).
pub fn fast_mode() -> bool {
    std::env::var("MGOPT_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The denser-than-paper grid requested via `MGOPT_DENSE="<mw>,<mwh>"`
/// (solar step in MW, battery step in MWh), if any.
///
/// # Panics
/// Panics when the variable is set but not two comma-separated positive
/// numbers — a silently ignored typo would mislabel benchmark artifacts.
pub fn dense_steps() -> Option<(f64, f64)> {
    let v = std::env::var("MGOPT_DENSE").ok()?;
    let parse = |s: &str| {
        s.trim()
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("MGOPT_DENSE: bad number {s:?} (want \"<mw>,<mwh>\")"))
    };
    match v.split(',').collect::<Vec<_>>()[..] {
        [mw, mwh] => Some((parse(mw), parse(mwh))),
        _ => panic!("MGOPT_DENSE: want \"<step_mw>,<step_mwh>\", got {v:?}"),
    }
}

/// The search space for the current mode: `MGOPT_FAST=1` shrinks it to 27
/// points, `MGOPT_DENSE="<mw>,<mwh>"` densifies the paper envelope (see
/// [`CompositionSpace::dense`]), default is the paper's 1,089-point grid.
pub fn space() -> CompositionSpace {
    if fast_mode() {
        CompositionSpace::tiny()
    } else if let Some((mw, mwh)) = dense_steps() {
        CompositionSpace::dense(mw, mwh)
    } else {
        CompositionSpace::paper()
    }
}

/// Prepared Houston scenario (paper configuration).
pub fn houston() -> PreparedScenario {
    ScenarioConfig {
        space: space(),
        ..ScenarioConfig::paper_houston()
    }
    .prepare()
}

/// Prepared Berkeley scenario (paper configuration).
pub fn berkeley() -> PreparedScenario {
    ScenarioConfig {
        space: space(),
        ..ScenarioConfig::paper_berkeley()
    }
    .prepare()
}

/// Fastest observed wall-clock of a timing series: on shared hosts timing
/// noise is strictly additive (interference only ever slows a run down),
/// so the minimum is the robust estimator of intrinsic cost.
pub fn min_ms(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Write a JSON artifact under `results/` (best effort — printing is the
/// primary output; artifact failures only warn).
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: could not create results dir");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_respects_fast_mode_env() {
        // Can't mutate the environment safely in parallel tests; just
        // check both space shapes are available.
        assert_eq!(CompositionSpace::paper().len(), 1_089);
        assert_eq!(CompositionSpace::tiny().len(), 27);
    }

    #[test]
    fn scenarios_prepare() {
        std::env::set_var("MGOPT_FAST", "1");
        let h = houston();
        assert_eq!(h.site_name(), "Houston, TX");
        std::env::remove_var("MGOPT_FAST");
    }
}

//! Pruned (multi-fidelity) search — the paper's §4.4 future-work item
//! ("dynamic pruning or early stopping for non-promising simulation
//! runs"), implemented as successive halving over partial-year
//! simulations and compared against the exhaustive ground truth.

use mgopt_optimizer::pareto::{igd, recovery_fraction};
use mgopt_optimizer::{successive_halving, Sampler, Study, SuccessiveHalvingConfig};
use serde::{Deserialize, Serialize};

use crate::objectives::ObjectiveSet;
use crate::problem::CompositionProblem;
use crate::scenario::PreparedScenario;

/// Pruned-search comparison output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunedSearchOutput {
    /// Site name.
    pub site: String,
    /// Size of the full space.
    pub space_size: usize,
    /// Initial cohort size.
    pub initial_cohort: usize,
    /// Rung fidelities visited.
    pub rung_fidelities: Vec<f64>,
    /// Raw evaluations at any fidelity.
    pub raw_evaluations: usize,
    /// Cost in full-year-simulation equivalents.
    pub equivalent_full_evaluations: f64,
    /// Fraction of the true Pareto front recovered.
    pub recovery: f64,
    /// IGD of the found front vs the truth (normalized).
    pub igd: f64,
    /// Cost speed-up vs exhaustive (space / equivalent evaluations).
    pub speedup_by_cost: f64,
}

/// Run successive halving against the exhaustive ground truth.
pub fn run(scenario: &PreparedScenario, config: &SuccessiveHalvingConfig) -> PrunedSearchOutput {
    let problem = CompositionProblem::new(scenario, ObjectiveSet::paper());

    let exhaustive = Study::new(Sampler::Exhaustive).optimize(&problem);
    let truth = exhaustive.pareto_front();
    let truth_obj: Vec<Vec<f64>> = truth.iter().map(|t| t.objectives.clone()).collect();

    let sh = successive_halving(&problem, config);
    let found = sh.as_optimization_result().pareto_front();
    let found_obj: Vec<Vec<f64>> = found.iter().map(|t| t.objectives.clone()).collect();

    PrunedSearchOutput {
        site: scenario.site_name().to_string(),
        space_size: exhaustive.sampled_trials,
        initial_cohort: config.initial_cohort,
        rung_fidelities: sh.rung_fidelities.clone(),
        raw_evaluations: sh.raw_evaluations,
        equivalent_full_evaluations: sh.equivalent_full_evaluations,
        recovery: recovery_fraction(&sh.full_fidelity_history, &truth),
        igd: igd(&found_obj, &truth_obj),
        speedup_by_cost: exhaustive.sampled_trials as f64
            / sh.equivalent_full_evaluations.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    #[test]
    fn pruning_cheaper_than_exhaustive_with_decent_recovery() {
        let scenario = ScenarioConfig {
            space: CompositionSpace {
                wind_choices: (0..=6).collect(),
                solar_choices_kw: (0..=6).map(|i| i as f64 * 6_000.0).collect(),
                battery_choices_kwh: (0..=3).map(|i| i as f64 * 20_000.0).collect(),
            },
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        let out = run(
            &scenario,
            &SuccessiveHalvingConfig {
                initial_cohort: 112,
                eta: 2,
                min_fidelity: 0.25,
                seed: 42,
            },
        );
        assert_eq!(out.space_size, 7 * 7 * 4);
        assert!(
            out.equivalent_full_evaluations < out.space_size as f64,
            "cost {} vs space {}",
            out.equivalent_full_evaluations,
            out.space_size
        );
        assert!(out.speedup_by_cost > 1.5, "speedup {}", out.speedup_by_cost);
        assert!(out.recovery > 0.3, "recovery {}", out.recovery);
        assert!(out.igd < 0.25, "igd {}", out.igd);
    }
}

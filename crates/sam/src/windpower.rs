//! The SAM Windpower module: turbine power curves, resource adjustment,
//! and farm-level losses.
//!
//! Per time step: shear the reference wind speed to hub height (power law),
//! correct for air density (ideal gas law from site pressure and ambient
//! temperature), evaluate the turbine power curve, and apply farm losses
//! (wake + availability).

use mgopt_units::TimeSeries;
use mgopt_weather::wind::power_law_shear;
use mgopt_weather::WeatherYear;
use serde::{Deserialize, Serialize};

use crate::GenerationModel;

/// Dry-air gas constant, J/(kg·K).
const R_DRY_AIR: f64 = 287.058;
/// Reference air density (15 °C, sea level), kg/m³.
pub const RHO_REF: f64 = 1.225;

/// A turbine power curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerCurve {
    /// Analytic curve: cubic ramp between cut-in and rated speed.
    Cubic {
        /// Cut-in wind speed, m/s.
        cut_in_ms: f64,
        /// Rated wind speed, m/s.
        rated_ms: f64,
        /// Cut-out wind speed, m/s.
        cut_out_ms: f64,
    },
    /// Tabulated curve: `(wind speed m/s, power fraction of rated)` points,
    /// linearly interpolated, zero outside the table.
    Table(Vec<(f64, f64)>),
}

impl PowerCurve {
    /// A generic utility-scale curve (3 MW class, e.g. V112-like):
    /// cut-in 3 m/s, rated 12 m/s, cut-out 25 m/s.
    pub fn generic_3mw_class() -> Self {
        PowerCurve::Cubic {
            cut_in_ms: 3.0,
            rated_ms: 12.0,
            cut_out_ms: 25.0,
        }
    }

    /// Power output as a fraction of rated power at a hub-height speed.
    pub fn power_fraction(&self, v_ms: f64) -> f64 {
        match self {
            PowerCurve::Cubic {
                cut_in_ms,
                rated_ms,
                cut_out_ms,
            } => {
                if v_ms < *cut_in_ms || v_ms >= *cut_out_ms {
                    0.0
                } else if v_ms >= *rated_ms {
                    1.0
                } else {
                    let num = v_ms.powi(3) - cut_in_ms.powi(3);
                    let den = rated_ms.powi(3) - cut_in_ms.powi(3);
                    (num / den).clamp(0.0, 1.0)
                }
            }
            PowerCurve::Table(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if v_ms <= points[0].0 || v_ms >= points[points.len() - 1].0 {
                    // Outside the table: below first point or beyond cut-out.
                    if (v_ms - points[points.len() - 1].0).abs() < 1e-12 {
                        return points[points.len() - 1].1;
                    }
                    // Below the first table point or beyond cut-out.
                    return 0.0;
                }
                for w in points.windows(2) {
                    let (v0, p0) = w[0];
                    let (v1, p1) = w[1];
                    if v_ms >= v0 && v_ms < v1 {
                        let frac = (v_ms - v0) / (v1 - v0);
                        return (p0 + (p1 - p0) * frac).clamp(0.0, 1.0);
                    }
                }
                0.0
            }
        }
    }
}

/// One wind turbine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindTurbineParams {
    /// Rated electrical power, kW.
    pub rated_kw: f64,
    /// Hub height, m.
    pub hub_height_m: f64,
    /// Power curve.
    pub curve: PowerCurve,
}

impl WindTurbineParams {
    /// The paper's turbine: 3 MW rated (embodied 1,046 tCO2 per unit).
    pub fn paper_3mw() -> Self {
        Self {
            rated_kw: 3_000.0,
            hub_height_m: 100.0,
            curve: PowerCurve::generic_3mw_class(),
        }
    }
}

/// A wind farm of identical turbines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindFarmParams {
    /// Turbine model.
    pub turbine: WindTurbineParams,
    /// Number of turbines (the paper sweeps 0–10).
    pub n_turbines: u32,
    /// Array wake losses as a fraction of gross energy.
    pub wake_loss: f64,
    /// Availability factor (downtime derate).
    pub availability: f64,
}

impl WindFarmParams {
    /// Paper-style farm of `n` 3 MW turbines with typical losses.
    pub fn paper_farm(n_turbines: u32) -> Self {
        Self {
            turbine: WindTurbineParams::paper_3mw(),
            n_turbines,
            wake_loss: 0.06,
            availability: 0.97,
        }
    }
}

/// A wind farm generation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindFarm {
    params: WindFarmParams,
}

impl WindFarm {
    /// Create a farm from explicit parameters.
    ///
    /// # Panics
    /// Panics on invalid loss fractions or a non-positive turbine rating.
    pub fn new(params: WindFarmParams) -> Self {
        assert!(params.turbine.rated_kw > 0.0);
        assert!(params.turbine.hub_height_m > 0.0);
        assert!((0.0..1.0).contains(&params.wake_loss));
        assert!((0.0..=1.0).contains(&params.availability) && params.availability > 0.0);
        Self { params }
    }

    /// Paper-style farm of `n` 3 MW turbines.
    pub fn with_turbines(n: u32) -> Self {
        Self::new(WindFarmParams::paper_farm(n))
    }

    /// The parameter set.
    pub fn params(&self) -> &WindFarmParams {
        &self.params
    }

    /// Air density from site pressure and air temperature (ideal gas).
    pub fn air_density(pressure_pa: f64, temp_air_c: f64) -> f64 {
        pressure_pa / (R_DRY_AIR * (temp_air_c + 273.15))
    }

    /// Farm power (kW) at one instant.
    ///
    /// Density scaling applies below rated output (aerodynamic regime);
    /// at/above rated the turbine's controller pins output at nameplate.
    pub fn power_kw(&self, v_ref_ms: f64, ref_height_m: f64, shear: f64, rho: f64) -> f64 {
        if self.params.n_turbines == 0 {
            return 0.0;
        }
        let v_hub = power_law_shear(
            v_ref_ms,
            ref_height_m,
            self.params.turbine.hub_height_m,
            shear,
        );
        let frac = self.params.turbine.curve.power_fraction(v_hub);
        let density_scaled = if frac < 1.0 {
            frac * (rho / RHO_REF)
        } else {
            frac
        };
        let per_turbine =
            (density_scaled * self.params.turbine.rated_kw).min(self.params.turbine.rated_kw);
        per_turbine
            * self.params.n_turbines as f64
            * (1.0 - self.params.wake_loss)
            * self.params.availability
    }
}

impl GenerationModel for WindFarm {
    fn simulate(&self, weather: &WeatherYear) -> TimeSeries {
        let n = weather.len();
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let rho = Self::air_density(weather.pressure_pa, weather.temp_air_c.values()[i]);
            values.push(self.power_kw(
                weather.wind_speed_ms.values()[i],
                weather.wind_ref_height_m,
                weather.wind_shear_exponent,
                rho,
            ));
        }
        TimeSeries::new(weather.step(), values)
    }

    fn rated_kw(&self) -> f64 {
        self.params.turbine.rated_kw * self.params.n_turbines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::SimDuration;
    use mgopt_weather::{Climate, WeatherGenerator};

    #[test]
    fn cubic_curve_anchor_points() {
        let c = PowerCurve::generic_3mw_class();
        assert_eq!(c.power_fraction(0.0), 0.0);
        assert_eq!(c.power_fraction(2.9), 0.0);
        assert_eq!(c.power_fraction(12.0), 1.0);
        assert_eq!(c.power_fraction(20.0), 1.0);
        assert_eq!(c.power_fraction(25.0), 0.0, "cut-out");
        assert_eq!(c.power_fraction(30.0), 0.0);
        // Halfway in cubic terms.
        let f = c.power_fraction(8.0);
        let expected = (8.0f64.powi(3) - 27.0) / (1_728.0 - 27.0);
        assert!((f - expected).abs() < 1e-12);
    }

    #[test]
    fn table_curve_interpolates() {
        let c = PowerCurve::Table(vec![(3.0, 0.0), (8.0, 0.5), (12.0, 1.0)]);
        assert_eq!(c.power_fraction(2.0), 0.0);
        assert!((c.power_fraction(5.5) - 0.25).abs() < 1e-12);
        assert!((c.power_fraction(10.0) - 0.75).abs() < 1e-12);
        assert_eq!(c.power_fraction(13.0), 0.0, "beyond table = cut-out");
    }

    #[test]
    fn air_density_sane() {
        let rho = WindFarm::air_density(101_325.0, 15.0);
        assert!((rho - 1.225).abs() < 0.01, "rho {rho}");
        // Hot Houston afternoon: thinner air.
        assert!(WindFarm::air_density(101_000.0, 35.0) < rho);
    }

    #[test]
    fn farm_scales_with_turbine_count() {
        let w = WeatherGenerator::new(Climate::houston(), 1).generate(SimDuration::from_hours(1.0));
        let one = WindFarm::with_turbines(1).simulate(&w).energy_kwh();
        let ten = WindFarm::with_turbines(10).simulate(&w).energy_kwh();
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_turbines_zero_power() {
        let w = WeatherGenerator::new(Climate::houston(), 1).generate(SimDuration::from_hours(1.0));
        let farm = WindFarm::with_turbines(0);
        assert_eq!(farm.simulate(&w).max(), 0.0);
        assert_eq!(farm.rated_kw(), 0.0);
    }

    #[test]
    fn houston_capacity_factor_strong() {
        let w =
            WeatherGenerator::new(Climate::houston(), 42).generate(SimDuration::from_hours(1.0));
        let cf = WindFarm::with_turbines(4).capacity_factor(&w);
        // Gulf-coast onshore wind at 100 m hub (calibrated to the paper's
        // Houston coverage figures): ~0.18-0.32.
        assert!((0.16..0.35).contains(&cf), "houston wind CF {cf}");
    }

    #[test]
    fn berkeley_capacity_factor_weak() {
        let w =
            WeatherGenerator::new(Climate::berkeley(), 42).generate(SimDuration::from_hours(1.0));
        let cf = WindFarm::with_turbines(4).capacity_factor(&w);
        assert!((0.06..0.25).contains(&cf), "berkeley wind CF {cf}");
    }

    #[test]
    fn site_contrast_wind() {
        let wh =
            WeatherGenerator::new(Climate::houston(), 3).generate(SimDuration::from_hours(1.0));
        let wb =
            WeatherGenerator::new(Climate::berkeley(), 3).generate(SimDuration::from_hours(1.0));
        let farm = WindFarm::with_turbines(4);
        assert!(farm.capacity_factor(&wh) > 1.5 * farm.capacity_factor(&wb));
    }

    #[test]
    fn output_never_exceeds_nameplate() {
        let w = WeatherGenerator::new(Climate::houston(), 5).generate(SimDuration::from_hours(1.0));
        let farm = WindFarm::with_turbines(10);
        let ts = farm.simulate(&w);
        assert!(ts.max() <= farm.rated_kw() + 1e-9);
    }

    #[test]
    fn losses_reduce_output() {
        let w = WeatherGenerator::new(Climate::houston(), 6).generate(SimDuration::from_hours(1.0));
        let lossy = WindFarm::with_turbines(1);
        let mut params = WindFarmParams::paper_farm(1);
        params.wake_loss = 0.0;
        params.availability = 1.0;
        let ideal = WindFarm::new(params);
        let ratio = lossy.simulate(&w).energy_kwh() / ideal.simulate(&w).energy_kwh();
        assert!((ratio - 0.94 * 0.97).abs() < 1e-9, "loss ratio {ratio}");
    }

    #[test]
    #[should_panic]
    fn invalid_wake_loss_panics() {
        let mut p = WindFarmParams::paper_farm(1);
        p.wake_loss = 1.0;
        WindFarm::new(p);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn power_fraction_in_unit_interval(v in 0.0f64..50.0) {
            let c = PowerCurve::generic_3mw_class();
            let f = c.power_fraction(v);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn cubic_monotone_below_rated(v1 in 3.0f64..12.0, v2 in 3.0f64..12.0) {
            let c = PowerCurve::generic_3mw_class();
            let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
            prop_assert!(c.power_fraction(lo) <= c.power_fraction(hi) + 1e-12);
        }

        #[test]
        fn farm_power_nonnegative_bounded(
            v in 0.0f64..50.0,
            temp in -20.0f64..45.0,
            n in 0u32..11,
        ) {
            let farm = WindFarm::with_turbines(n);
            let rho = WindFarm::air_density(101_000.0, temp);
            let p = farm.power_kw(v, 100.0, 0.14, rho);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= farm.rated_kw() + 1e-9);
        }
    }
}

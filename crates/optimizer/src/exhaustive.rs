//! Exhaustive grid search — the paper's ground-truth baseline ("evaluates
//! all 1,089 valid combinations").

use mgopt_telemetry as telemetry;

use crate::problem::{Genome, Problem, Trial};
use crate::study::OptimizationResult;

/// Evaluate every point of the space in one batched pass
/// ([`Problem::evaluate_batch_constrained`] parallelizes internally, and
/// records constraint violations so the ground-truth front of a
/// constrained problem is the *feasible* front).
pub fn exhaustive_search(problem: &dyn Problem) -> OptimizationResult {
    let n = problem.space_size();
    let genomes: Vec<Genome> = (0..n).map(|i| problem.genome_at(i)).collect();
    telemetry::Event::new("sampler")
        .str("kind", "exhaustive")
        .u64("evals", n as u64)
        .emit();
    let evaluations = problem.evaluate_batch_constrained(&genomes);
    let history: Vec<Trial> = genomes
        .into_iter()
        .zip(evaluations)
        .map(|(g, e)| Trial::from_evaluation(g, e))
        .collect();
    OptimizationResult::from_history(history, n, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;

    #[test]
    fn visits_every_point_once() {
        let problem = FnProblem::new(vec![4, 5], 2, |g| vec![g[0] as f64, g[1] as f64]);
        let result = exhaustive_search(&problem);
        assert_eq!(result.history.len(), 20);
        assert_eq!(result.sampled_trials, 20);
        assert_eq!(result.unique_evaluations, 20);
        let unique: std::collections::HashSet<_> =
            result.history.iter().map(|t| t.genome.clone()).collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn pareto_front_of_grid_is_exact() {
        // Objectives (x, 10 - x): every x is non-dominated at y_noise = 0.
        let problem = FnProblem::new(vec![11, 3], 2, |g| {
            vec![g[0] as f64 + g[1] as f64, 10.0 - g[0] as f64 + g[1] as f64]
        });
        let result = exhaustive_search(&problem);
        let front = result.pareto_front();
        assert_eq!(front.len(), 11);
        assert!(front.iter().all(|t| t.genome[1] == 0));
    }

    #[test]
    fn deterministic_ordering() {
        let problem = FnProblem::new(vec![3, 3], 1, |g| vec![(g[0] * 3 + g[1]) as f64]);
        let a = exhaustive_search(&problem);
        let b = exhaustive_search(&problem);
        assert_eq!(a.history, b.history);
        // Row-major order by construction.
        assert_eq!(a.history[0].genome, vec![0, 0]);
        assert_eq!(a.history[8].genome, vec![2, 2]);
    }
}

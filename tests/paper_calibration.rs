//! Integration tests pinning the reproduction to the paper's headline
//! numbers and qualitative findings (Tables 1/2, Figure 3 crossovers,
//! site-specific strategy contrast).

use std::sync::OnceLock;

use microgrid_opt::core::experiments::{fig3, tables};
use microgrid_opt::prelude::*;

fn houston() -> &'static PreparedScenario {
    static S: OnceLock<PreparedScenario> = OnceLock::new();
    S.get_or_init(|| ScenarioConfig::paper_houston().prepare())
}

fn berkeley() -> &'static PreparedScenario {
    static S: OnceLock<PreparedScenario> = OnceLock::new();
    S.get_or_init(|| ScenarioConfig::paper_berkeley().prepare())
}

fn simulate(s: &PreparedScenario, c: Composition) -> microgrid_opt::microgrid::AnnualResult {
    simulate_year(&s.data, &s.load, &c, &s.config.sim)
}

#[test]
fn houston_baseline_matches_paper() {
    let r = simulate(houston(), Composition::BASELINE);
    // Paper Table 1: 15.54 tCO2/day for the grid-only data center.
    assert!(
        (r.metrics.operational_t_per_day - 15.54).abs() < 0.1,
        "houston baseline {}",
        r.metrics.operational_t_per_day
    );
}

#[test]
fn berkeley_baseline_matches_paper() {
    let r = simulate(berkeley(), Composition::BASELINE);
    // Paper Table 2: 9.33 tCO2/day.
    assert!(
        (r.metrics.operational_t_per_day - 9.33).abs() < 0.1,
        "berkeley baseline {}",
        r.metrics.operational_t_per_day
    );
}

#[test]
fn houston_wind_first_candidate_shape() {
    // Paper Table 1 row 2: (12 MW wind, 0 solar, 7.5 MWh) cuts operational
    // emissions by more than half at ~71 % coverage.
    let r = simulate(houston(), Composition::new(4, 0.0, 7_500.0));
    assert!(
        (r.metrics.embodied_t - 4_649.0).abs() < 1e-9,
        "embodied exact"
    );
    assert!(
        r.metrics.operational_t_per_day < 0.5 * 15.54,
        "must cut emissions by more than half: {}",
        r.metrics.operational_t_per_day
    );
    assert!(
        (60.0..82.0).contains(&r.metrics.coverage_pct()),
        "coverage {} should be near the paper's 71 %",
        r.metrics.coverage_pct()
    );
    assert!(
        (100.0..260.0).contains(&r.metrics.battery_cycles),
        "battery cycles {} vs paper's 153",
        r.metrics.battery_cycles
    );
}

#[test]
fn berkeley_solar_dominates_mid_budget() {
    // Paper Table 2 row 3: a solar-only system (12 MW solar, 37.5 MWh)
    // reaches ~92 % coverage.
    let r = simulate(berkeley(), Composition::new(0, 12_000.0, 37_500.0));
    assert!((r.metrics.embodied_t - 9_885.0).abs() < 1e-9);
    assert!(
        (85.0..96.0).contains(&r.metrics.coverage_pct()),
        "coverage {}",
        r.metrics.coverage_pct()
    );
    assert!(
        r.metrics.operational_t_per_day < 2.0,
        "operational {}",
        r.metrics.operational_t_per_day
    );
}

#[test]
fn max_buildout_reaches_near_full_coverage_both_sites() {
    // Paper row 5 at both sites: (30, 40, 60) reaches ~100 % coverage at
    // 39,380 t embodied.
    for s in [houston(), berkeley()] {
        let r = simulate(s, Composition::new(10, 40_000.0, 60_000.0));
        assert!((r.metrics.embodied_t - 39_380.0).abs() < 1e-9);
        assert!(
            r.metrics.coverage_pct() > 99.0,
            "{}: coverage {}",
            s.site_name(),
            r.metrics.coverage_pct()
        );
        assert!(r.metrics.operational_t_per_day < 0.30);
    }
}

#[test]
fn site_contrast_solar_vs_wind_matches_paper_direction() {
    // The paper's central site contrast: Berkeley's resource mix favors
    // solar, Houston's favors wind. Two assertions capture it on our
    // substrate, comparing matched ~9.6-9.9 ktCO2 strategies (solar paired
    // with the storage it needs to serve the night):
    //   solar: 12 MW + 37.5 MWh = 9,885 t (the paper's Berkeley pick)
    //   wind:   7 turbines + 37.5 MWh = 9,647 t
    let solar = Composition::new(0, 12_000.0, 37_500.0);
    let wind = Composition::new(7, 0.0, 37_500.0);

    // (1) In Berkeley, the solar build strictly beats the wind build.
    let b_wind = simulate(berkeley(), wind);
    let b_solar = simulate(berkeley(), solar);
    assert!(
        b_solar.metrics.operational_t_per_day < b_wind.metrics.operational_t_per_day,
        "berkeley: solar {} should beat wind {}",
        b_solar.metrics.operational_t_per_day,
        b_wind.metrics.operational_t_per_day
    );

    // (2) Wind performs *relatively* better in Houston than in Berkeley.
    // Measured on coverage (served energy), which is pinned by the sites'
    // Weibull/climatology parameters and therefore robust across weather
    // realizations — the CI-weighted emission ratio is not (the grid
    // coupling makes it flip sign from seed to seed on this substrate).
    let h_wind = simulate(houston(), wind);
    let h_solar = simulate(houston(), solar);
    let houston_gap = h_wind.metrics.coverage - h_solar.metrics.coverage;
    let berkeley_gap = b_wind.metrics.coverage - b_solar.metrics.coverage;
    assert!(
        houston_gap > berkeley_gap + 0.02,
        "wind should be relatively stronger in Houston: coverage gaps {houston_gap:.3} vs {berkeley_gap:.3}"
    );

    // (3) At the *entry* budget (no storage, one technology), wind is the
    // better first move in Houston per embodied ton — the paper's Table 1
    // row-2 story (12 MW wind before any solar).
    let h_turbine = simulate(houston(), Composition::new(1, 0.0, 0.0));
    let h_panel = simulate(houston(), Composition::new(0, 4_000.0, 0.0));
    let baseline = simulate(houston(), Composition::BASELINE)
        .metrics
        .operational_t_per_day;
    let wind_saving_per_t = (baseline - h_turbine.metrics.operational_t_per_day) / 1_046.0;
    let solar_saving_per_t = (baseline - h_panel.metrics.operational_t_per_day) / 2_520.0;
    assert!(
        wind_saving_per_t > solar_saving_per_t,
        "houston entry move: wind {wind_saving_per_t:.5} vs solar {solar_saving_per_t:.5} t/day per tCO2"
    );
}

#[test]
fn fig3_crossovers_match_paper_horizons() {
    // The paper: the baseline becomes the worst configuration after ~7
    // years in Houston and ~12 years in Berkeley. Use the paper's own
    // candidate ladder simulated on our substrate.
    let h_rows: Vec<_> = [
        Composition::BASELINE,
        Composition::new(4, 0.0, 7_500.0),
        Composition::new(3, 8_000.0, 22_500.0),
        Composition::new(4, 12_000.0, 52_500.0),
        Composition::new(10, 40_000.0, 60_000.0),
    ]
    .iter()
    .map(|c| microgrid_opt::core::experiments::CandidateRow::from_result(&simulate(houston(), *c)))
    .collect();
    let out = fig3::run("Houston, TX", &h_rows, 20);
    let y = out.baseline_becomes_worst_year.expect("crossover expected");
    assert!((5.5..9.0).contains(&y), "houston crossover {y}");

    let b_rows: Vec<_> = [
        Composition::BASELINE,
        Composition::new(1, 4_000.0, 22_500.0),
        Composition::new(0, 12_000.0, 37_500.0),
        Composition::new(3, 12_000.0, 52_500.0),
        Composition::new(10, 40_000.0, 60_000.0),
    ]
    .iter()
    .map(|c| microgrid_opt::core::experiments::CandidateRow::from_result(&simulate(berkeley(), *c)))
    .collect();
    let out = fig3::run("Berkeley, CA", &b_rows, 20);
    let y = out.baseline_becomes_worst_year.expect("crossover expected");
    assert!((10.0..14.0).contains(&y), "berkeley crossover {y}");
}

#[test]
fn candidate_extraction_respects_budgets_on_reduced_space() {
    // Full-table semantics on a reduced sweep (27 points, fast in CI).
    let scenario = ScenarioConfig {
        space: CompositionSpace::tiny(),
        ..ScenarioConfig::paper_houston()
    }
    .prepare();
    let table = tables::run(&scenario);
    assert_eq!(table.rows.len(), 5);
    assert!(table.rows[1].embodied_t <= 5_000.0);
    assert!(table.rows[2].embodied_t <= 10_000.0);
    assert!(table.rows[3].embodied_t <= 15_000.0);
    // More budget never hurts.
    for w in table.rows.windows(2) {
        assert!(w[1].operational_t_per_day <= w[0].operational_t_per_day + 1e-9);
    }
}

#[test]
fn embodied_emissions_are_paper_exact() {
    let db = EmbodiedDb::paper();
    // All five Houston rows and all five Berkeley rows.
    let cases = [
        (Composition::BASELINE, 0.0),
        (Composition::new(4, 0.0, 7_500.0), 4_649.0),
        (Composition::new(3, 8_000.0, 22_500.0), 9_573.0),
        (Composition::new(4, 12_000.0, 52_500.0), 14_999.0),
        (Composition::new(10, 40_000.0, 60_000.0), 39_380.0),
        (Composition::new(1, 4_000.0, 22_500.0), 4_961.0),
        (Composition::new(0, 12_000.0, 37_500.0), 9_885.0),
        (Composition::new(3, 12_000.0, 52_500.0), 13_953.0),
    ];
    for (c, expected) in cases {
        assert!((db.total_t(&c) - expected).abs() < 1e-9, "{c}");
    }
}

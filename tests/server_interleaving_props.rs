//! Property: daemon study results depend only on `(fleet, budget, seed)`
//! — **never** on how concurrent studies interleave.
//!
//! Each case draws 2–4 studies (random seeds, budgets, and optional peak
//! caps), fires them all at once over one connection — so their NSGA-II
//! workers genuinely race over one shared `Arc`-prepared fleet — and
//! then replays the identical studies strictly sequentially (each `Done`
//! awaited before the next request) on a fresh daemon sharing the same
//! prepared cache. Every front must match bit for bit: same genomes,
//! same plans, same `f64` objectives.

use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, OnceLock};
use std::thread;

use proptest::prelude::*;

use microgrid_opt::core::wire::{
    encode_request, FleetSpec, PlanPoint, Request, RequestFrame, Response, ResponseFrame,
    StudyBudget, StudyRequest, WIRE_VERSION,
};
use microgrid_opt::core::PreparedCache;
use microgrid_opt::prelude::{CompositionSpace, Server, ServerConfig};

/// One prepared-scenario cache for the whole test binary: both the
/// concurrent and the sequential daemon hand out the same `Arc`s, so the
/// property is pinned over genuinely shared read-only data.
fn shared_cache() -> Arc<PreparedCache> {
    static CACHE: OnceLock<Arc<PreparedCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| Arc::new(PreparedCache::new(8))))
}

fn study(seed: u64, population_size: usize, extra_trials: usize, cap: Option<f64>) -> StudyRequest {
    StudyRequest {
        fleet: FleetSpec::Preset("paper".into()),
        space: Some(CompositionSpace {
            wind_choices: vec![0, 4],
            solar_choices_kw: vec![0.0, 16_000.0],
            battery_choices_kwh: vec![0.0, 22_500.0],
        }),
        objectives: None,
        budget: StudyBudget {
            population_size,
            max_trials: population_size + extra_trials,
            seed,
        },
        peak_cap_kw: cap,
        stream: false,
    }
}

/// Drive `studies` through one daemon connection. When `sequential`,
/// each study's `Done` is awaited before the next request is written —
/// the no-interleaving baseline. Otherwise all requests go out first and
/// the workers run concurrently. Returns each study's final front.
fn run_batch(studies: &[StudyRequest], sequential: bool) -> Vec<Vec<PlanPoint>> {
    let server = Arc::new(Server::with_cache(ServerConfig::default(), shared_cache()));
    let (client, server_end) = microgrid_opt::server::pipe::duplex();
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_connection(server_end.reader, server_end.writer))
    };
    let mut writer = client.writer;
    let mut reader = BufReader::new(client.reader);

    let send =
        |writer: &mut microgrid_opt::server::pipe::PipeWriter, k: usize, s: &StudyRequest| {
            let frame = RequestFrame {
                v: WIRE_VERSION,
                id: format!("s{k}"),
                req: Request::Study(s.clone()),
            };
            writeln!(writer, "{}", encode_request(&frame)).unwrap();
        };
    let mut fronts: Vec<Option<Vec<PlanPoint>>> = vec![None; studies.len()];
    let recv_done_for = |reader: &mut BufReader<microgrid_opt::server::pipe::PipeReader>,
                         fronts: &mut Vec<Option<Vec<PlanPoint>>>,
                         want: usize| {
        let mut remaining = want;
        while remaining > 0 {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF");
            let frame: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
            match frame.resp {
                Response::Done(d) => {
                    let k: usize = frame.id[1..].parse().unwrap();
                    assert!(fronts[k].is_none(), "duplicate Done for {}", frame.id);
                    fronts[k] = Some(d.front);
                    remaining -= 1;
                }
                Response::Accepted(_) => {}
                other => panic!("unexpected frame for {}: {other:?}", frame.id),
            }
        }
    };

    if sequential {
        for (k, s) in studies.iter().enumerate() {
            send(&mut writer, k, s);
            recv_done_for(&mut reader, &mut fronts, 1);
        }
    } else {
        for (k, s) in studies.iter().enumerate() {
            send(&mut writer, k, s);
        }
        recv_done_for(&mut reader, &mut fronts, studies.len());
    }
    drop(writer); // EOF: the daemon drains and exits cleanly
    join.join().unwrap().unwrap();
    fronts.into_iter().map(Option::unwrap).collect()
}

/// Strategy: one study = (seed, population bucket, extra trials, cap pick).
fn study_strategy() -> impl Strategy<Value = StudyRequest> {
    (0u64..6, 0usize..2, 0usize..9, 0usize..3).prop_map(|(seed, pop, extra, cap)| {
        let population_size = [4, 6][pop];
        // An unconstrained run, a loose cap, and a tight cap that bites.
        let cap = [None, Some(60_000.0), Some(25_000.0)][cap];
        study(seed, population_size, extra, cap)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn concurrent_studies_match_sequential_bit_for_bit(
        studies in proptest::strategies::collection::vec(study_strategy(), 2..=4usize)
    ) {
        let concurrent = run_batch(&studies, false);
        let sequential = run_batch(&studies, true);
        for (k, (c, s)) in concurrent.iter().zip(&sequential).enumerate() {
            prop_assert!(!c.is_empty(), "study {k} returned an empty front");
            prop_assert_eq!(c, s, "study {} diverged under interleaving", k);
        }
    }
}

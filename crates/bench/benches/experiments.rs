//! End-to-end experiment benchmarks: scaled-down versions of every paper
//! artifact, so `cargo bench` exercises each experiment path. Table 1/2,
//! Figure 2 and Figure 3 share the sweep path; Figure 4 and the §4.4
//! comparison have their own.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mgopt_core::experiments::{fig2, fig3, fig4, pruned, search, tables};
use mgopt_core::{PreparedScenario, ScenarioConfig};
use mgopt_microgrid::CompositionSpace;
use mgopt_optimizer::{Nsga2Config, SuccessiveHalvingConfig};

fn reduced_scenario() -> PreparedScenario {
    ScenarioConfig {
        space: CompositionSpace {
            wind_choices: vec![0, 2, 4, 6, 8, 10],
            solar_choices_kw: (0..=5).map(|i| i as f64 * 8_000.0).collect(),
            battery_choices_kwh: (0..=3).map(|i| i as f64 * 20_000.0).collect(),
        },
        ..ScenarioConfig::paper_houston()
    }
    .prepare()
}

fn bench_experiments(c: &mut Criterion) {
    let scenario = reduced_scenario();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("fig2_and_tables_sweep_144", |b| {
        b.iter(|| black_box(fig2::run_with_table(black_box(&scenario))))
    });

    group.bench_function("fig3_projection", |b| {
        let table = tables::run(&scenario);
        b.iter(|| black_box(fig3::run(&table.site, black_box(&table.rows), 20)))
    });

    group.bench_function("fig4_coverage_surface", |b| {
        b.iter(|| black_box(fig4::run(black_box(&scenario))))
    });

    group.bench_function("search_perf_nsga2_vs_exhaustive", |b| {
        b.iter(|| {
            black_box(search::run_with_config(
                black_box(&scenario),
                Nsga2Config {
                    population_size: 16,
                    max_trials: 64,
                    seed: 42,
                    ..Nsga2Config::default()
                },
            ))
        })
    });

    group.bench_function("pruned_successive_halving", |b| {
        b.iter(|| {
            black_box(pruned::run(
                black_box(&scenario),
                &SuccessiveHalvingConfig {
                    initial_cohort: 64,
                    eta: 2,
                    min_fidelity: 0.25,
                    seed: 42,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);

//! Solar position and extraterrestrial irradiance.
//!
//! Implements the standard astronomical relationships used by PVWatts /
//! Duffie & Beckman: solar declination (Cooper), equation of time (Spencer),
//! hour angle, zenith/elevation/azimuth, and the eccentricity-corrected
//! extraterrestrial irradiance.

use mgopt_units::SimTime;

use crate::location::Location;

/// Solar constant in W/m².
pub const SOLAR_CONSTANT_W_M2: f64 = 1_361.0;

/// Solar angles at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SunPosition {
    /// Zenith angle in radians (0 = sun overhead, >= pi/2 = below horizon).
    pub zenith_rad: f64,
    /// Elevation above the horizon in radians (negative at night).
    pub elevation_rad: f64,
    /// Azimuth in radians measured clockwise from north.
    pub azimuth_rad: f64,
    /// Solar declination in radians.
    pub declination_rad: f64,
    /// Hour angle in radians (0 at solar noon, negative morning).
    pub hour_angle_rad: f64,
}

impl SunPosition {
    /// `true` when the sun is above the horizon.
    #[inline]
    pub fn is_up(&self) -> bool {
        self.elevation_rad > 0.0
    }

    /// Cosine of the zenith angle, clamped at zero below the horizon.
    #[inline]
    pub fn cos_zenith(&self) -> f64 {
        self.zenith_rad.cos().max(0.0)
    }
}

/// Solar declination in radians for a 0-based day of year (Cooper 1969).
pub fn declination_rad(day_of_year: u32) -> f64 {
    let n = day_of_year as f64 + 1.0;
    (23.45f64).to_radians() * ((360.0 / 365.0) * (284.0 + n)).to_radians().sin()
}

/// Equation of time in minutes for a 0-based day of year (Spencer 1971).
pub fn equation_of_time_min(day_of_year: u32) -> f64 {
    let b = 2.0 * std::f64::consts::PI * (day_of_year as f64) / 365.0;
    229.18
        * (0.000_075 + 0.001_868 * b.cos()
            - 0.032_077 * b.sin()
            - 0.014_615 * (2.0 * b).cos()
            - 0.040_849 * (2.0 * b).sin())
}

/// Sun position for a site at a simulation instant (local standard time).
pub fn sun_position(loc: &Location, t: SimTime) -> SunPosition {
    let cal = t.calendar();
    let decl = declination_rad(cal.day_of_year);

    // Local solar time = local standard time + EoT + longitude correction.
    let eot_h = equation_of_time_min(cal.day_of_year) / 60.0;
    let lon_corr_h = (loc.longitude_deg - loc.timezone_meridian_deg()) / 15.0;
    let solar_time_h = cal.hour_of_day() + eot_h + lon_corr_h;

    let hour_angle = (solar_time_h - 12.0) * 15.0f64.to_radians();
    let lat = loc.latitude_rad();

    let cos_zenith = lat.sin() * decl.sin() + lat.cos() * decl.cos() * hour_angle.cos();
    let zenith = cos_zenith.clamp(-1.0, 1.0).acos();
    let elevation = std::f64::consts::FRAC_PI_2 - zenith;

    // Azimuth clockwise from north (NOAA convention).
    let sin_z = zenith.sin();
    let azimuth = if sin_z.abs() < 1e-9 {
        // Sun at zenith/nadir: azimuth undefined; pick south.
        std::f64::consts::PI
    } else {
        let cos_az = ((decl.sin() - lat.sin() * cos_zenith) / (lat.cos() * sin_z)).clamp(-1.0, 1.0);
        let az = cos_az.acos();
        if hour_angle > 0.0 {
            2.0 * std::f64::consts::PI - az
        } else {
            az
        }
    };

    SunPosition {
        zenith_rad: zenith,
        elevation_rad: elevation,
        azimuth_rad: azimuth,
        declination_rad: decl,
        hour_angle_rad: hour_angle,
    }
}

/// Extraterrestrial irradiance on a surface normal to the sun (W/m²),
/// with the eccentricity correction of Duffie & Beckman eq. 1.4.1.
pub fn extraterrestrial_normal_w_m2(day_of_year: u32) -> f64 {
    let n = day_of_year as f64 + 1.0;
    SOLAR_CONSTANT_W_M2 * (1.0 + 0.033 * ((360.0 * n / 365.0).to_radians()).cos())
}

/// Extraterrestrial irradiance on a horizontal surface (W/m²).
pub fn extraterrestrial_horizontal_w_m2(loc: &Location, t: SimTime) -> f64 {
    let pos = sun_position(loc, t);
    extraterrestrial_normal_w_m2(t.calendar().day_of_year) * pos.cos_zenith()
}

/// Day length in hours from the sunset hour angle.
pub fn day_length_h(loc: &Location, day_of_year: u32) -> f64 {
    let decl = declination_rad(day_of_year);
    let lat = loc.latitude_rad();
    let cos_ws = -lat.tan() * decl.tan();
    if cos_ws <= -1.0 {
        24.0 // polar day
    } else if cos_ws >= 1.0 {
        0.0 // polar night
    } else {
        2.0 * cos_ws.acos().to_degrees() / 15.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::{SimTime, SECONDS_PER_DAY, SECONDS_PER_HOUR};

    // Day-of-year anchors (0-based): Mar 20 equinox ~ 78, Jun 21 solstice ~
    // 171, Dec 21 solstice ~ 354.
    const EQUINOX: u32 = 78;
    const SUMMER_SOLSTICE: u32 = 171;
    const WINTER_SOLSTICE: u32 = 354;

    fn noonish(day: u32) -> SimTime {
        SimTime::from_secs(day as i64 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR)
    }

    #[test]
    fn declination_extremes() {
        assert!(declination_rad(SUMMER_SOLSTICE).to_degrees() > 23.2);
        assert!(declination_rad(WINTER_SOLSTICE).to_degrees() < -23.2);
        assert!(declination_rad(EQUINOX).to_degrees().abs() < 1.5);
    }

    #[test]
    fn equation_of_time_bounded() {
        for d in 0..365 {
            let e = equation_of_time_min(d);
            assert!((-15.0..=17.0).contains(&e), "day {d}: {e}");
        }
    }

    #[test]
    fn noon_elevation_near_expected_at_equinox() {
        // At equinox, solar-noon elevation ~ 90 - latitude.
        let b = Location::berkeley();
        let mut best = f64::NEG_INFINITY;
        for m in 0..(24 * 60) {
            let t = SimTime::from_secs(EQUINOX as i64 * SECONDS_PER_DAY + m * 60);
            best = best.max(sun_position(&b, t).elevation_rad.to_degrees());
        }
        let expected = 90.0 - b.latitude_deg;
        assert!(
            (best - expected).abs() < 1.5,
            "max elevation {best}, expected ~{expected}"
        );
    }

    #[test]
    fn sun_below_horizon_at_midnight() {
        for loc in [Location::berkeley(), Location::houston()] {
            for day in [0, 100, 200, 300] {
                let t = SimTime::from_secs(day * SECONDS_PER_DAY);
                let pos = sun_position(&loc, t);
                assert!(!pos.is_up(), "{}, day {day}", loc.name);
                assert_eq!(pos.cos_zenith(), 0.0);
            }
        }
    }

    #[test]
    fn summer_days_longer_than_winter_days() {
        let b = Location::berkeley();
        let summer = day_length_h(&b, SUMMER_SOLSTICE);
        let winter = day_length_h(&b, WINTER_SOLSTICE);
        assert!(summer > 14.0, "summer day {summer}");
        assert!(winter < 10.0, "winter day {winter}");
        // Houston is closer to the equator: milder seasonality.
        let h = Location::houston();
        assert!(day_length_h(&h, SUMMER_SOLSTICE) < summer);
        assert!(day_length_h(&h, WINTER_SOLSTICE) > winter);
    }

    #[test]
    fn azimuth_sweeps_east_to_west() {
        let h = Location::houston();
        let morning = sun_position(
            &h,
            SimTime::from_secs(100 * SECONDS_PER_DAY + 8 * SECONDS_PER_HOUR),
        );
        let evening = sun_position(
            &h,
            SimTime::from_secs(100 * SECONDS_PER_DAY + 17 * SECONDS_PER_HOUR),
        );
        assert!(
            morning.azimuth_rad.to_degrees() < 180.0,
            "morning sun in the east"
        );
        assert!(
            evening.azimuth_rad.to_degrees() > 180.0,
            "evening sun in the west"
        );
    }

    #[test]
    fn extraterrestrial_seasonal_variation() {
        // Earth is closest to the sun in January.
        let jan = extraterrestrial_normal_w_m2(3);
        let jul = extraterrestrial_normal_w_m2(184);
        assert!(jan > jul);
        assert!((jan / jul - 1.0) < 0.08);
        assert!(jan < 1_420.0 && jul > 1_310.0);
    }

    #[test]
    fn horizontal_extraterrestrial_zero_at_night() {
        let b = Location::berkeley();
        assert_eq!(
            extraterrestrial_horizontal_w_m2(&b, SimTime::from_secs(0)),
            0.0
        );
        assert!(extraterrestrial_horizontal_w_m2(&b, noonish(SUMMER_SOLSTICE)) > 1_000.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mgopt_units::SimTime;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn elevation_zenith_complementary(secs in 0i64..31_536_000) {
            let pos = sun_position(&Location::houston(), SimTime::from_secs(secs));
            prop_assert!((pos.elevation_rad + pos.zenith_rad - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        }

        #[test]
        fn azimuth_in_range(secs in 0i64..31_536_000) {
            let pos = sun_position(&Location::berkeley(), SimTime::from_secs(secs));
            prop_assert!((0.0..=2.0 * std::f64::consts::PI + 1e-9).contains(&pos.azimuth_rad));
        }

        #[test]
        fn declination_bounded(day in 0u32..365) {
            prop_assert!(declination_rad(day).to_degrees().abs() <= 23.46);
        }

        #[test]
        fn day_length_reasonable_mid_latitudes(day in 0u32..365) {
            let len = day_length_h(&Location::berkeley(), day);
            prop_assert!((9.0..=15.2).contains(&len));
        }
    }
}

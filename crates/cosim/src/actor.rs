//! Actors: power producers and consumers on the microgrid bus.

use mgopt_units::{Power, SimDuration, SimTime};

use crate::signal::Signal;

/// A participant on the microgrid bus.
///
/// Sign convention (Vessim): production is **positive**, consumption is
/// **negative**.
pub trait Actor: Send {
    /// Human-readable name (used in records and reports).
    fn name(&self) -> &str;

    /// Power at instant `t`, kW (positive = producing).
    fn power(&mut self, t: SimTime) -> Power;

    /// The actor's own evaluation cadence for the event-driven engine.
    ///
    /// `None` means "evaluate at the engine's bus step". Coarser cadences
    /// model slow simulators in a mosaik-style co-simulation: between
    /// evaluations the engine holds the last value.
    fn step_size(&self) -> Option<SimDuration> {
        None
    }
}

/// An actor driven by a [`Signal`].
pub struct SignalActor {
    name: String,
    signal: Box<dyn Signal>,
    scale: f64,
    step_size: Option<SimDuration>,
}

impl SignalActor {
    /// A producer whose signal is power in kW (≥ 0 expected).
    pub fn producer(name: impl Into<String>, signal: impl Signal + 'static) -> Self {
        Self {
            name: name.into(),
            signal: Box::new(signal),
            scale: 1.0,
            step_size: None,
        }
    }

    /// A consumer whose signal is *demand* in kW (≥ 0); the actor reports
    /// it as negative bus power.
    pub fn consumer(name: impl Into<String>, signal: impl Signal + 'static) -> Self {
        Self {
            name: name.into(),
            signal: Box::new(signal),
            scale: -1.0,
            step_size: None,
        }
    }

    /// Set an explicit evaluation cadence (event-driven engine).
    pub fn with_step_size(mut self, step: SimDuration) -> Self {
        assert!(step.secs() > 0, "actor step size must be positive");
        self.step_size = Some(step);
        self
    }

    /// Multiply the signal by an extra factor (e.g. fleet scaling).
    pub fn with_scale(mut self, factor: f64) -> Self {
        self.scale *= factor;
        self
    }
}

impl Actor for SignalActor {
    fn name(&self) -> &str {
        &self.name
    }

    fn power(&mut self, t: SimTime) -> Power {
        Power::from_kw(self.signal.at(t) * self.scale)
    }

    fn step_size(&self) -> Option<SimDuration> {
        self.step_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ConstantSignal;
    use mgopt_units::TimeSeries;

    #[test]
    fn producer_positive_consumer_negative() {
        let mut p = SignalActor::producer("pv", ConstantSignal::new(50.0));
        let mut c = SignalActor::consumer("dc", ConstantSignal::new(50.0));
        assert_eq!(p.power(SimTime::START).kw(), 50.0);
        assert_eq!(c.power(SimTime::START).kw(), -50.0);
    }

    #[test]
    fn scaling_composes() {
        let mut a = SignalActor::consumer("dc", ConstantSignal::new(10.0)).with_scale(3.0);
        assert_eq!(a.power(SimTime::START).kw(), -30.0);
    }

    #[test]
    fn signal_actor_follows_timeseries() {
        let ts = TimeSeries::new(SimDuration::from_hours(1.0), vec![5.0, 7.0]);
        let mut a = SignalActor::producer("gen", ts);
        assert_eq!(a.power(SimTime::from_hours(0.5)).kw(), 5.0);
        assert_eq!(a.power(SimTime::from_hours(1.0)).kw(), 7.0);
    }

    #[test]
    fn step_size_builder() {
        let a = SignalActor::producer("pv", ConstantSignal::new(1.0))
            .with_step_size(SimDuration::from_minutes(5.0));
        assert_eq!(a.step_size(), Some(SimDuration::from_minutes(5.0)));
        assert_eq!(a.name(), "pv");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_step_size_panics() {
        SignalActor::producer("pv", ConstantSignal::new(1.0)).with_step_size(SimDuration::ZERO);
    }
}

//! The exhaustive sweep: every composition in the space, simulated in
//! parallel — the ground truth the paper's §4.4 compares NSGA-II against,
//! and the data source for Figure 2 and Tables 1/2.

use mgopt_microgrid::{simulate_year, AnnualResult};
use rayon::prelude::*;

use crate::scenario::PreparedScenario;

/// Simulate every composition of the scenario's space (rayon-parallel).
///
/// Results are returned in the space's flat index order.
pub fn sweep_all(scenario: &PreparedScenario) -> Vec<AnnualResult> {
    let space = &scenario.config.space;
    (0..space.len())
        .into_par_iter()
        .map(|i| {
            let comp = space.at(i);
            simulate_year(&scenario.data, &scenario.load, &comp, &scenario.config.sim)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    #[test]
    fn sweep_covers_space_in_order() {
        let scenario = ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_berkeley()
        }
        .prepare();
        let results = sweep_all(&scenario);
        assert_eq!(results.len(), 27);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.composition, scenario.config.space.at(i));
        }
        // Baseline first, max build-out last.
        assert_eq!(results[0].metrics.embodied_t, 0.0);
        assert!(results[26].metrics.embodied_t > 30_000.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let scenario = ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        let a = sweep_all(&scenario);
        let b = sweep_all(&scenario);
        assert_eq!(a, b);
    }
}

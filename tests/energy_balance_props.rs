//! Property-based integration tests: physical invariants of the full
//! pipeline under randomized compositions and policies.

use microgrid_opt::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

fn scenario() -> &'static PreparedScenario {
    static S: OnceLock<PreparedScenario> = OnceLock::new();
    S.get_or_init(|| {
        ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare()
    })
}

fn arbitrary_composition() -> impl Strategy<Value = Composition> {
    (0u32..=10, 0usize..=10, 0usize..=8)
        .prop_map(|(w, s, b)| Composition::new(w, s as f64 * 4_000.0, b as f64 * 7_500.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn annual_energy_balance_closes(comp in arbitrary_composition()) {
        let s = scenario();
        let r = simulate_year(&s.data, &s.load, &comp, &s.config.sim);
        let m = &r.metrics;
        // production + import + discharge ≈ demand + export + charge,
        // up to battery round-trip losses and the SoC drift of one
        // battery-full (battery starts full).
        let lhs = m.production_mwh + m.grid_import_mwh + m.battery_discharge_mwh;
        let rhs = m.demand_mwh + m.grid_export_mwh + m.battery_charge_mwh;
        let losses_allowance = 0.15 * m.battery_charge_mwh + comp.battery_mwh() + 1.0;
        prop_assert!(
            (lhs - rhs).abs() <= losses_allowance,
            "lhs {lhs} rhs {rhs} allowance {losses_allowance} ({comp})"
        );
    }

    #[test]
    fn metrics_are_physical(comp in arbitrary_composition()) {
        let s = scenario();
        let r = simulate_year(&s.data, &s.load, &comp, &s.config.sim);
        let m = &r.metrics;
        prop_assert!((0.0..=1.0).contains(&m.coverage));
        prop_assert!((0.0..=1.0).contains(&m.direct_coverage));
        prop_assert!(m.direct_coverage <= m.coverage + 1e-9,
            "direct {} cannot exceed total {}", m.direct_coverage, m.coverage);
        prop_assert!(m.operational_t_per_day >= 0.0);
        prop_assert!(m.grid_import_mwh >= 0.0 && m.grid_export_mwh >= 0.0);
        prop_assert!(m.battery_cycles >= 0.0);
        prop_assert!((0.0..=1.0).contains(&m.self_sufficient_fraction));
        prop_assert!(m.embodied_t >= 0.0);
    }

    #[test]
    fn more_capacity_never_increases_operational_emissions(
        w in 0u32..=8, s in 0usize..=8, b in 0usize..=6,
    ) {
        let sc = scenario();
        let base = Composition::new(w, s as f64 * 4_000.0, b as f64 * 7_500.0);
        let bigger = Composition::new(w + 2, (s + 2) as f64 * 4_000.0, b as f64 * 7_500.0);
        let r0 = simulate_year(&sc.data, &sc.load, &base, &sc.config.sim);
        let r1 = simulate_year(&sc.data, &sc.load, &bigger, &sc.config.sim);
        prop_assert!(
            r1.metrics.operational_t_per_day <= r0.metrics.operational_t_per_day + 1e-9,
            "{} -> {}",
            r0.metrics.operational_t_per_day,
            r1.metrics.operational_t_per_day
        );
        prop_assert!(r1.metrics.coverage >= r0.metrics.coverage - 1e-9);
    }

    #[test]
    fn islanded_never_imports(comp in arbitrary_composition()) {
        let s = scenario();
        let cfg = SimConfig {
            policy: DispatchPolicy::Islanded,
            ..s.config.sim.clone()
        };
        let r = simulate_year(&s.data, &s.load, &comp, &cfg);
        prop_assert_eq!(r.metrics.grid_import_mwh, 0.0);
        prop_assert_eq!(r.metrics.operational_t_per_day, 0.0);
        // Unserved energy appears unless the build is enormous.
        prop_assert!(r.metrics.unmet_mwh >= 0.0);
    }
}

//! Scenario configuration — the Hydra-YAML equivalent.
//!
//! A [`ScenarioConfig`] is a plain serde value (JSON in this workspace)
//! that fully determines an experiment: site, simulation step, seeds,
//! workload, search space, and simulation parameters. `prepare()` turns it
//! into the heavyweight [`PreparedScenario`] (synthesized weather, unit
//! generation profiles, CI/price signals, load trace) shared by all trials.

use mgopt_microgrid::{CompositionSpace, SimConfig, Site, SiteData};
use mgopt_units::{SimDuration, TimeSeries};
use mgopt_workload::{constant_load, diurnal_web_load, HpcWorkload, HpcWorkloadParams};
use serde::{Deserialize, Serialize};

/// Built-in sites (the paper's two case studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SitePreset {
    /// Berkeley, CA (CAISO).
    Berkeley,
    /// Houston, TX (ERCOT).
    Houston,
}

impl SitePreset {
    /// Materialize the site definition.
    pub fn site(self) -> Site {
        match self {
            SitePreset::Berkeley => Site::berkeley(),
            SitePreset::Houston => Site::houston(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SitePreset::Berkeley => "Berkeley, CA",
            SitePreset::Houston => "Houston, TX",
        }
    }
}

/// Workload families.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadConfig {
    /// Synthetic Perlmutter-class HPC trace (the paper's workload).
    PerlmutterLike {
        /// Exact mean power, kW.
        mean_kw: f64,
    },
    /// Perfectly flat load.
    Constant {
        /// Power, kW.
        kw: f64,
    },
    /// Interactive/web diurnal load.
    Web {
        /// Exact mean power, kW.
        mean_kw: f64,
    },
}

impl WorkloadConfig {
    /// Generate the year-long power trace.
    pub fn generate(&self, step: SimDuration, seed: u64) -> TimeSeries {
        match *self {
            WorkloadConfig::PerlmutterLike { mean_kw } => {
                let params = HpcWorkloadParams {
                    mean_power_kw: mean_kw,
                    peak_power_kw: (mean_kw * 1.6).max(mean_kw + 1.0),
                    ..HpcWorkloadParams::default()
                };
                HpcWorkload::new(params, seed).generate(step)
            }
            WorkloadConfig::Constant { kw } => constant_load(step, kw),
            WorkloadConfig::Web { mean_kw } => diurnal_web_load(step, mean_kw, seed),
        }
    }
}

/// A fully specified experiment scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// The site.
    pub site: SitePreset,
    /// Simulation step in minutes (the paper runs minutely; 60 is the
    /// default here and reproduces the same annual statistics).
    pub step_minutes: u32,
    /// Master seed for every stochastic substrate.
    pub seed: u64,
    /// Workload family.
    pub workload: WorkloadConfig,
    /// Search space.
    pub space: CompositionSpace,
    /// Simulation parameters (battery model, policy, embodied factors).
    pub sim: SimConfig,
}

impl ScenarioConfig {
    /// The paper's Houston scenario.
    pub fn paper_houston() -> Self {
        Self {
            site: SitePreset::Houston,
            step_minutes: 60,
            seed: 42,
            workload: WorkloadConfig::PerlmutterLike { mean_kw: 1_620.0 },
            space: CompositionSpace::paper(),
            sim: SimConfig::default(),
        }
    }

    /// The paper's Berkeley scenario.
    pub fn paper_berkeley() -> Self {
        Self {
            site: SitePreset::Berkeley,
            ..Self::paper_houston()
        }
    }

    /// Simulation step as a duration.
    pub fn step(&self) -> SimDuration {
        SimDuration::from_minutes(self.step_minutes as f64)
    }

    /// Synthesize all inputs (expensive; do once, share across trials).
    pub fn prepare(&self) -> PreparedScenario {
        let step = self.step();
        let data = self.site.site().prepare(step, self.seed);
        let load = self.workload.generate(step, self.seed);
        PreparedScenario {
            config: self.clone(),
            data,
            load,
        }
    }
}

/// A scenario with all inputs synthesized.
#[derive(Debug, Clone)]
pub struct PreparedScenario {
    /// The originating configuration.
    pub config: ScenarioConfig,
    /// Site data (weather, unit profiles, CI, prices).
    pub data: SiteData,
    /// The data-center load trace, kW.
    pub load: TimeSeries,
}

impl PreparedScenario {
    /// Site display name.
    pub fn site_name(&self) -> &str {
        &self.data.site.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios_differ_only_in_site() {
        let h = ScenarioConfig::paper_houston();
        let b = ScenarioConfig::paper_berkeley();
        assert_eq!(h.seed, b.seed);
        assert_eq!(h.space, b.space);
        assert_ne!(h.site, b.site);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = ScenarioConfig::paper_houston();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        assert!(json.contains("Houston"));
    }

    #[test]
    fn prepare_produces_consistent_shapes() {
        let cfg = ScenarioConfig {
            step_minutes: 60,
            ..ScenarioConfig::paper_berkeley()
        };
        let prepared = cfg.prepare();
        assert_eq!(prepared.load.len(), prepared.data.len());
        assert_eq!(prepared.load.step(), prepared.data.step());
        assert_eq!(prepared.site_name(), "Berkeley, CA");
    }

    #[test]
    fn workload_families_generate() {
        let step = SimDuration::from_hours(1.0);
        let hpc = WorkloadConfig::PerlmutterLike { mean_kw: 1_620.0 }.generate(step, 1);
        assert!((hpc.mean() - 1_620.0).abs() < 1e-6);
        let flat = WorkloadConfig::Constant { kw: 500.0 }.generate(step, 1);
        assert_eq!(flat.std(), 0.0);
        let web = WorkloadConfig::Web { mean_kw: 800.0 }.generate(step, 1);
        assert!((web.mean() - 800.0).abs() < 1e-6);
        assert!(web.std() > 0.0);
    }

    #[test]
    fn preparation_deterministic() {
        let cfg = ScenarioConfig::paper_houston();
        let a = cfg.prepare();
        let b = cfg.prepare();
        assert_eq!(a.load, b.load);
        assert_eq!(a.data.ci_g_per_kwh, b.data.ci_g_per_kwh);
    }
}

//! §4.4 — search performance: NSGA-II (350 trials, population 50) vs the
//! exhaustive 1,089-composition baseline. The paper reports ~80 % Pareto
//! recovery at a ~2.4× speed-up.

use mgopt_optimizer::pareto::{igd, recovery_fraction};
use mgopt_optimizer::{Nsga2Config, Sampler, Study};
use serde::{Deserialize, Serialize};

use crate::objectives::ObjectiveSet;
use crate::problem::CompositionProblem;
use crate::scenario::PreparedScenario;

/// Search-performance comparison output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchPerfOutput {
    /// Site name.
    pub site: String,
    /// Size of the full space.
    pub space_size: usize,
    /// Trials sampled by NSGA-II (duplicates included; the paper's "350").
    pub nsga2_sampled: usize,
    /// Unique simulations NSGA-II actually ran.
    pub nsga2_unique: usize,
    /// Size of the true Pareto front.
    pub true_front_size: usize,
    /// Size of the front NSGA-II found.
    pub found_front_size: usize,
    /// Fraction of true Pareto-optimal compositions recovered.
    pub recovery: f64,
    /// Inverted generational distance of the found front (normalized).
    pub igd: f64,
    /// Speed-up by unique simulation count (space / unique).
    pub speedup_by_evaluations: f64,
    /// Speed-up by wall time (exhaustive seconds / NSGA-II seconds).
    pub speedup_by_wall_time: f64,
    /// Exhaustive wall time, seconds.
    pub exhaustive_seconds: f64,
    /// NSGA-II wall time, seconds.
    pub nsga2_seconds: f64,
}

/// Run the comparison with explicit NSGA-II settings.
pub fn run_with_config(scenario: &PreparedScenario, cfg: Nsga2Config) -> SearchPerfOutput {
    let problem = CompositionProblem::new(scenario, ObjectiveSet::paper());

    let exhaustive = Study::new(Sampler::Exhaustive).optimize(&problem);
    let truth = exhaustive.pareto_front();

    let sampled_target = cfg.max_trials;
    let nsga2 = Study::new(Sampler::Nsga2(cfg)).optimize(&problem);
    let found = nsga2.pareto_front();

    let truth_obj: Vec<Vec<f64>> = truth.iter().map(|t| t.objectives.clone()).collect();
    let found_obj: Vec<Vec<f64>> = found.iter().map(|t| t.objectives.clone()).collect();

    SearchPerfOutput {
        site: scenario.site_name().to_string(),
        space_size: exhaustive.sampled_trials,
        nsga2_sampled: sampled_target,
        nsga2_unique: nsga2.unique_evaluations,
        true_front_size: truth.len(),
        found_front_size: found.len(),
        recovery: recovery_fraction(&nsga2.history, &truth),
        igd: igd(&found_obj, &truth_obj),
        speedup_by_evaluations: exhaustive.sampled_trials as f64
            / nsga2.unique_evaluations.max(1) as f64,
        speedup_by_wall_time: if nsga2.wall_seconds > 0.0 {
            exhaustive.wall_seconds / nsga2.wall_seconds
        } else {
            f64::NAN
        },
        exhaustive_seconds: exhaustive.wall_seconds,
        nsga2_seconds: nsga2.wall_seconds,
    }
}

/// Run with the paper's settings (350 trials, population 50).
pub fn run(scenario: &PreparedScenario, seed: u64) -> SearchPerfOutput {
    run_with_config(
        scenario,
        Nsga2Config {
            population_size: 50,
            max_trials: 350,
            seed,
            ..Nsga2Config::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    /// A small-but-not-tiny space so NSGA-II has something to search.
    fn scenario() -> PreparedScenario {
        ScenarioConfig {
            space: CompositionSpace {
                wind_choices: (0..=5).collect(),
                solar_choices_kw: (0..=5).map(|i| i as f64 * 8_000.0).collect(),
                battery_choices_kwh: (0..=3).map(|i| i as f64 * 15_000.0).collect(),
            },
            ..ScenarioConfig::paper_houston()
        }
        .prepare()
    }

    #[test]
    fn nsga2_recovers_most_of_the_front() {
        let out = run_with_config(
            &scenario(),
            Nsga2Config {
                population_size: 24,
                max_trials: 120,
                seed: 7,
                ..Nsga2Config::default()
            },
        );
        assert_eq!(out.space_size, 6 * 6 * 4);
        assert!(out.nsga2_unique <= 120);
        assert!(
            out.recovery >= 0.5,
            "recovery {} with front {}/{}",
            out.recovery,
            out.found_front_size,
            out.true_front_size
        );
        assert!(out.speedup_by_evaluations > 1.0);
        assert!(out.igd < 0.2, "igd {}", out.igd);
    }

    #[test]
    fn found_front_never_larger_than_history() {
        let out = run_with_config(
            &scenario(),
            Nsga2Config {
                population_size: 16,
                max_trials: 64,
                seed: 8,
                ..Nsga2Config::default()
            },
        );
        assert!(out.found_front_size <= out.nsga2_unique);
        assert!(out.true_front_size >= 1);
        assert!((0.0..=1.0).contains(&out.recovery));
    }
}

//! Shared prepared-scenario cache — the daemon's hot-site store.
//!
//! Preparing a scenario (weather synthesis, unit profiles, CI/price
//! signals, load trace) is the expensive part of answering a study
//! request; the search itself reuses those arrays read-only. A
//! [`PreparedCache`] keys fully-prepared [`PreparedScenario`]s by the
//! **canonical serialization of the entire [`ScenarioConfig`]**, so two
//! scenarios differing in a single field — one weather-jitter seed, one
//! battery choice — can never collide, and hands them out as
//! [`Arc`]s that stay alive for in-flight studies even after eviction.
//!
//! Concurrency: the map lock is held only to look up or insert a slot;
//! the actual preparation runs outside it through a per-slot
//! [`OnceLock`], so distinct scenarios prepare in parallel while
//! concurrent requests for the *same* scenario block on one preparation
//! instead of duplicating it.
//!
//! Every lookup bumps [`Counter::PrepCacheHits`] or
//! [`Counter::PrepCacheMisses`], surfacing the hit rate in the
//! `MGOPT_TRACE` counter snapshot.

// mgopt-lint: allow(determinism) — prepared-site cache is keyed lookup only; eviction scans use the ordered tick, not map order
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use mgopt_telemetry::{self as telemetry, Counter};

use crate::scenario::{PreparedScenario, ScenarioConfig};

/// The canonical cache key: the config's compact JSON. Collision-free by
/// construction (equal keys ⇔ equal configs), at the cost of a string
/// compare per lookup — negligible next to a preparation.
pub fn scenario_cache_key(config: &ScenarioConfig) -> String {
    serde_json::to_string(config).expect("scenario configs always encode")
}

/// A short FNV-1a digest of the canonical key, for logs and trace events
/// (never used for lookup, so digest collisions are cosmetic).
pub fn scenario_key_hash(config: &ScenarioConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in scenario_cache_key(config).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Slot {
    cell: Arc<OnceLock<Arc<PreparedScenario>>>,
    last_used: u64,
}

struct Inner {
    slots: HashMap<String, Slot>,
    tick: u64,
}

/// A bounded, thread-safe cache of prepared scenarios (LRU eviction).
pub struct PreparedCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PreparedCache {
    /// Create a cache holding at most `capacity` prepared scenarios
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                // mgopt-lint: allow(determinism) — victim choice is min_by_key over unique ticks, order-independent
                slots: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached (or in-flight) scenarios.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the prepared form of `config`, synthesizing it at most once
    /// per cache residency. Returns the shared scenario and whether this
    /// lookup was a hit (`true`) or had to prepare (`false`).
    ///
    /// The returned [`Arc`] is yours regardless of later evictions — a
    /// study holding it is never invalidated under load.
    pub fn get_or_prepare(&self, config: &ScenarioConfig) -> (Arc<PreparedScenario>, bool) {
        let key = scenario_cache_key(config);
        let (cell, hit) = {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.get_mut(&key) {
                slot.last_used = tick;
                (Arc::clone(&slot.cell), true)
            } else {
                let cell = Arc::new(OnceLock::new());
                inner.slots.insert(
                    key.clone(),
                    Slot {
                        cell: Arc::clone(&cell),
                        last_used: tick,
                    },
                );
                if inner.slots.len() > self.capacity {
                    evict_lru(&mut inner, &key);
                }
                (cell, false)
            }
        };
        telemetry::add(
            if hit {
                Counter::PrepCacheHits
            } else {
                Counter::PrepCacheMisses
            },
            1,
        );
        let prepared = Arc::clone(cell.get_or_init(|| Arc::new(config.prepare())));
        (prepared, hit)
    }
}

/// Evict the least-recently-used *initialized* slot other than `keep`.
/// In-flight slots (preparation still running) are never evicted, so a
/// burst of distinct scenarios can transiently exceed capacity rather
/// than lose work.
fn evict_lru(inner: &mut Inner, keep: &str) {
    if let Some(victim) = inner
        .slots
        .iter()
        .filter(|(k, slot)| k.as_str() != keep && slot.cell.get().is_some())
        .min_by_key(|(_, slot)| slot.last_used)
        .map(|(k, _)| k.clone())
    {
        inner.slots.remove(&victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_microgrid::CompositionSpace;

    fn tiny(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = PreparedCache::new(4);
        let (a, hit_a) = cache.get_or_prepare(&tiny(1));
        let (b, hit_b) = cache.get_or_prepare(&tiny(1));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn seed_jitter_does_not_collide() {
        // Two scenarios differing only in the weather/workload seed must
        // occupy distinct cache entries with distinct prepared inputs.
        let cache = PreparedCache::new(4);
        assert_ne!(scenario_cache_key(&tiny(1)), scenario_cache_key(&tiny(2)));
        let (a, _) = cache.get_or_prepare(&tiny(1));
        let (b, hit) = cache.get_or_prepare(&tiny(2));
        assert!(!hit, "different seed must miss");
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.load, b.load, "jittered workloads must differ");
    }

    #[test]
    fn lru_eviction_keeps_hot_entries_and_live_arcs() {
        let cache = PreparedCache::new(2);
        let (first, _) = cache.get_or_prepare(&tiny(1));
        let _ = cache.get_or_prepare(&tiny(2));
        let _ = cache.get_or_prepare(&tiny(1)); // touch 1: seed 2 is now LRU
        let _ = cache.get_or_prepare(&tiny(3)); // evicts seed 2
        assert_eq!(cache.len(), 2);
        let (_, hit1) = cache.get_or_prepare(&tiny(1));
        assert!(hit1, "hot entry survived eviction");
        let (_, hit2) = cache.get_or_prepare(&tiny(2));
        assert!(!hit2, "LRU entry was evicted");
        // The Arc handed out before eviction is still fully usable.
        assert_eq!(first.load.len(), first.data.len());
    }

    #[test]
    fn concurrent_same_key_prepares_once() {
        let cache = Arc::new(PreparedCache::new(4));
        let arcs: Vec<Arc<PreparedScenario>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || cache.get_or_prepare(&tiny(9)).0)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for other in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], other));
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn key_hash_is_stable_and_seed_sensitive() {
        assert_eq!(scenario_key_hash(&tiny(1)), scenario_key_hash(&tiny(1)));
        assert_ne!(scenario_key_hash(&tiny(1)), scenario_key_hash(&tiny(2)));
    }
}

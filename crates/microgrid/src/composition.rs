//! Microgrid compositions and the paper's design space.
//!
//! A composition is one point in the search space: number of 3 MW wind
//! turbines, installed solar DC capacity, and battery capacity. The paper
//! sweeps solar 0–40 MW in 4 MW increments, wind 0–10 turbines, and battery
//! 0–60 MWh in 7.5 MWh (Fluence Smartstack) units — 11 × 11 × 9 = 1,089
//! valid combinations.

use serde::{Deserialize, Serialize};

use crate::embodied::EmbodiedDb;

/// One microgrid composition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Composition {
    /// Number of 3 MW wind turbines.
    pub wind_turbines: u32,
    /// Installed solar DC capacity, kW.
    pub solar_kw: f64,
    /// Battery capacity, kWh.
    pub battery_kwh: f64,
}

impl Composition {
    /// The all-zero baseline (fully grid-powered data center).
    pub const BASELINE: Self = Self {
        wind_turbines: 0,
        solar_kw: 0.0,
        battery_kwh: 0.0,
    };

    /// Create a composition.
    pub fn new(wind_turbines: u32, solar_kw: f64, battery_kwh: f64) -> Self {
        assert!(solar_kw >= 0.0 && battery_kwh >= 0.0);
        Self {
            wind_turbines,
            solar_kw,
            battery_kwh,
        }
    }

    /// Wind capacity in MW (3 MW per turbine).
    pub fn wind_mw(&self) -> f64 {
        self.wind_turbines as f64 * 3.0
    }

    /// Solar capacity in MW.
    pub fn solar_mw(&self) -> f64 {
        self.solar_kw / 1_000.0
    }

    /// Battery capacity in MWh.
    pub fn battery_mwh(&self) -> f64 {
        self.battery_kwh / 1_000.0
    }

    /// Total embodied emissions of this composition, tCO2.
    pub fn embodied_t(&self, db: &EmbodiedDb) -> f64 {
        db.total_t(self)
    }

    /// `true` when no on-site infrastructure is present.
    pub fn is_baseline(&self) -> bool {
        self.wind_turbines == 0 && self.solar_kw == 0.0 && self.battery_kwh == 0.0
    }

    /// The paper's tuple notation: `(wind MW, solar MW, battery MWh)`.
    pub fn label(&self) -> String {
        format!(
            "({:.0}, {:.0}, {:.0})",
            self.wind_mw(),
            self.solar_mw(),
            self.battery_mwh()
        )
    }
}

impl std::fmt::Display for Composition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} turbines / {:.1} MW solar / {:.1} MWh battery",
            self.wind_turbines,
            self.solar_mw(),
            self.battery_mwh()
        )
    }
}

/// The discrete design space swept by the optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositionSpace {
    /// Allowed turbine counts.
    pub wind_choices: Vec<u32>,
    /// Allowed solar capacities, kW.
    pub solar_choices_kw: Vec<f64>,
    /// Allowed battery capacities, kWh.
    pub battery_choices_kwh: Vec<f64>,
}

impl CompositionSpace {
    /// The paper's space: wind 0–10 turbines, solar 0–40 MW in 4 MW steps,
    /// battery 0–60 MWh in 7.5 MWh steps (1,089 combinations).
    pub fn paper() -> Self {
        Self {
            wind_choices: (0..=10).collect(),
            solar_choices_kw: (0..=10).map(|i| i as f64 * 4_000.0).collect(),
            battery_choices_kwh: (0..=8).map(|i| i as f64 * 7_500.0).collect(),
        }
    }

    /// A denser grid over the paper's envelope: wind 0–10 turbines,
    /// solar 0–40 MW in `step_mw` increments, battery 0–60 MWh in
    /// `step_mwh` increments. `dense(4.0, 7.5)` reproduces
    /// [`paper`](CompositionSpace::paper); `dense(2.0, 3.75)` is the ~4× grid that
    /// the batched and fleet engines make interactive.
    ///
    /// # Panics
    /// Panics when either step is non-positive.
    pub fn dense(step_mw: f64, step_mwh: f64) -> Self {
        assert!(
            step_mw > 0.0 && step_mwh > 0.0,
            "grid steps must be positive"
        );
        // The epsilon keeps decimal steps that tile the envelope exactly
        // (e.g. 0.4 MW: 40/0.4 = 99.999… in f64) from dropping the
        // endpoint choice.
        let n_solar = (40.0 / step_mw + 1e-9).floor() as usize;
        let n_battery = (60.0 / step_mwh + 1e-9).floor() as usize;
        Self {
            wind_choices: (0..=10).collect(),
            solar_choices_kw: (0..=n_solar).map(|i| i as f64 * step_mw * 1e3).collect(),
            battery_choices_kwh: (0..=n_battery).map(|i| i as f64 * step_mwh * 1e3).collect(),
        }
    }

    /// A reduced space for fast tests/benches (3 × 3 × 3 = 27 points).
    pub fn tiny() -> Self {
        Self {
            wind_choices: vec![0, 4, 10],
            solar_choices_kw: vec![0.0, 16_000.0, 40_000.0],
            battery_choices_kwh: vec![0.0, 22_500.0, 60_000.0],
        }
    }

    /// Number of compositions in the space.
    pub fn len(&self) -> usize {
        self.wind_choices.len() * self.solar_choices_kw.len() * self.battery_choices_kwh.len()
    }

    /// `true` when the space is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The composition at flat index `i` (row-major: wind, solar, battery).
    pub fn at(&self, i: usize) -> Composition {
        assert!(i < self.len(), "index {i} out of bounds");
        let nb = self.battery_choices_kwh.len();
        let ns = self.solar_choices_kw.len();
        let wind = self.wind_choices[i / (ns * nb)];
        let solar = self.solar_choices_kw[(i / nb) % ns];
        let battery = self.battery_choices_kwh[i % nb];
        Composition::new(wind, solar, battery)
    }

    /// Flat index of a composition, if it lies on the grid.
    pub fn index_of(&self, c: &Composition) -> Option<usize> {
        let iw = self
            .wind_choices
            .iter()
            .position(|&w| w == c.wind_turbines)?;
        let is = self
            .solar_choices_kw
            .iter()
            .position(|&s| (s - c.solar_kw).abs() < 1e-9)?;
        let ib = self
            .battery_choices_kwh
            .iter()
            .position(|&b| (b - c.battery_kwh).abs() < 1e-9)?;
        let nb = self.battery_choices_kwh.len();
        let ns = self.solar_choices_kw.len();
        Some(iw * ns * nb + is * nb + ib)
    }

    /// Iterate over every composition in index order.
    pub fn iter(&self) -> impl Iterator<Item = Composition> + '_ {
        (0..self.len()).map(|i| self.at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_has_1089_points() {
        let space = CompositionSpace::paper();
        assert_eq!(space.len(), 1_089);
        assert_eq!(space.iter().count(), 1_089);
    }

    #[test]
    fn index_round_trips() {
        let space = CompositionSpace::paper();
        for i in [0, 1, 8, 9, 99, 500, 1_088] {
            let c = space.at(i);
            assert_eq!(space.index_of(&c), Some(i));
        }
    }

    #[test]
    fn first_and_last_points() {
        let space = CompositionSpace::paper();
        assert!(space.at(0).is_baseline());
        let last = space.at(1_088);
        assert_eq!(last.wind_turbines, 10);
        assert_eq!(last.solar_kw, 40_000.0);
        assert_eq!(last.battery_kwh, 60_000.0);
    }

    #[test]
    fn off_grid_composition_has_no_index() {
        let space = CompositionSpace::paper();
        let odd = Composition::new(3, 1_234.0, 0.0);
        assert_eq!(space.index_of(&odd), None);
    }

    #[test]
    fn unit_conversions() {
        let c = Composition::new(4, 12_000.0, 52_500.0);
        assert_eq!(c.wind_mw(), 12.0);
        assert_eq!(c.solar_mw(), 12.0);
        assert_eq!(c.battery_mwh(), 52.5);
        assert_eq!(c.label(), "(12, 12, 52)");
    }

    #[test]
    fn display_is_readable() {
        let c = Composition::new(2, 8_000.0, 7_500.0);
        assert_eq!(
            format!("{c}"),
            "2 turbines / 8.0 MW solar / 7.5 MWh battery"
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_out_of_bounds_panics() {
        CompositionSpace::tiny().at(27);
    }

    #[test]
    fn dense_at_paper_steps_reproduces_paper_space() {
        assert_eq!(CompositionSpace::dense(4.0, 7.5), CompositionSpace::paper());
    }

    #[test]
    fn dense_grid_scales_with_steps() {
        let d = CompositionSpace::dense(2.0, 3.75);
        assert_eq!(d.wind_choices.len(), 11);
        assert_eq!(d.solar_choices_kw.len(), 21);
        assert_eq!(d.battery_choices_kwh.len(), 17);
        assert_eq!(d.len(), 11 * 21 * 17);
        // Envelope preserved: same extremes as the paper grid.
        assert_eq!(*d.solar_choices_kw.last().unwrap(), 40_000.0);
        assert_eq!(*d.battery_choices_kwh.last().unwrap(), 60_000.0);
    }

    #[test]
    #[should_panic(expected = "grid steps must be positive")]
    fn dense_rejects_zero_step() {
        CompositionSpace::dense(0.0, 7.5);
    }

    #[test]
    fn tiny_space_shape() {
        let s = CompositionSpace::tiny();
        assert_eq!(s.len(), 27);
        assert!(!s.is_empty());
    }
}

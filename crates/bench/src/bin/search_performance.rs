//! Regenerates the **§4.4 search-performance** comparison: NSGA-II with
//! 350 trials / population 50 vs the exhaustive 1,089-composition sweep.
//! The paper reports ~80 % Pareto recovery at a ~2.4× speed-up.
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin search_performance
//! ```

use mgopt_core::experiments::search;
use mgopt_core::report;
use mgopt_optimizer::Nsga2Config;

fn main() {
    let fast = mgopt_bench::fast_mode();
    for scenario in [mgopt_bench::houston(), mgopt_bench::berkeley()] {
        let cfg = if fast {
            Nsga2Config {
                population_size: 10,
                max_trials: 20,
                seed: 42,
                ..Nsga2Config::default()
            }
        } else {
            Nsga2Config {
                population_size: 50,
                max_trials: 350,
                seed: 42,
                ..Nsga2Config::default()
            }
        };
        let out = search::run_with_config(&scenario, cfg);
        print!("{}", report::render_search_perf(&out));
        println!();
        let name = format!(
            "search_{}",
            if out.site.starts_with("Houston") {
                "houston"
            } else {
                "berkeley"
            }
        );
        mgopt_bench::write_artifact(&name, &out);
    }

    if fast {
        return;
    }

    // Recovery-vs-budget curve (Houston): the paper's single operating
    // point (350 trials -> ~80 % recovery at ~2.4x) sits on a trade-off
    // curve; sweeping the trial budget makes the curve explicit.
    println!("recovery vs. trial budget — Houston (population 50):");
    println!(
        "  {:>7} {:>8} {:>10} {:>12} {:>10}",
        "trials", "unique", "recovery", "speedup(ev)", "IGD"
    );
    let mut curve = Vec::new();
    for budget in [100usize, 200, 350, 500, 700, 1_000] {
        let out = search::run_with_config(
            &mgopt_bench::houston(),
            Nsga2Config {
                population_size: 50,
                max_trials: budget,
                seed: 42,
                ..Nsga2Config::default()
            },
        );
        println!(
            "  {:>7} {:>8} {:>9.1}% {:>11.2}x {:>10.4}",
            budget,
            out.nsga2_unique,
            out.recovery * 100.0,
            out.speedup_by_evaluations,
            out.igd
        );
        curve.push(out);
    }
    mgopt_bench::write_artifact("search_houston_budget_curve", &curve);
}

//! Property: `telemetry::parse::parse_line` never panics.
//!
//! `trace_report` feeds this parser whatever is on disk — truncated
//! traces from killed runs, editor mangling, the wrong file entirely.
//! The contract is that every input, however malformed, comes back as
//! either a parsed [`TraceEvent`] or a non-empty structured `Err` —
//! never a panic, never UB. Inputs are built from raw byte vectors and
//! mutations of a known-good line (the vendored proptest stub has no
//! string strategies, so strings are assembled by hand).

use proptest::prelude::*;

use microgrid_opt::telemetry::parse::parse_line;

/// A line the writer could genuinely emit; mutation baseline.
const VALID_LINE: &str =
    r#"{"ev":"study_done","t_ms":12.5,"generations":3,"label":"a\"b","ok":true,"nan":null}"#;

/// The parser's panic-freedom contract for one input: `Ok` or a
/// non-empty `Err`, reached without unwinding.
fn assert_total(input: &str) {
    if let Err(msg) = parse_line(input) {
        assert!(
            !msg.is_empty(),
            "empty error for input {input:?} — diagnostics must point somewhere"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded, since the parser takes `&str`)
    /// must parse or error, never panic. This covers embedded NUL,
    /// control bytes, stray quotes/braces, and replacement characters.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255u8, 0..120)) {
        let input = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&input);
    }

    /// Every strict prefix of a valid line is rejected with a structured
    /// error — a truncated trace (killed process, partial flush) must
    /// surface as a parse error, not a panic or a silent accept.
    #[test]
    fn truncations_of_a_valid_line_error_cleanly(cut in 0usize..VALID_LINE.len()) {
        let line = VALID_LINE;
        prop_assume!(line.is_char_boundary(cut));
        let truncated = &line[..cut];
        let err = parse_line(truncated).expect_err("strict prefixes are never valid frames");
        prop_assert!(!err.is_empty());
    }

    /// Single-byte corruption of a valid line parses or errors, never
    /// panics. When the corrupted byte lands mid-structure the error
    /// message is non-empty (structured, not a bare `String::new()`).
    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..VALID_LINE.len(), byte in 0u8..=255u8) {
        let mut bytes = VALID_LINE.as_bytes().to_vec();
        bytes[pos] = byte;
        let input = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&input);
    }

    /// Structural fragments spliced around a valid payload — unbalanced
    /// braces, duplicate keys, nested openers, escapes cut mid-sequence —
    /// exercise every `Err` path in the recursive-descent core.
    #[test]
    fn spliced_fragments_never_panic(
        pieces in prop::collection::vec(
            prop::sample::select(vec![
                r#"{"ev":"x","t_ms":1}"#,
                r#"{"ev":"x""#,
                r#""t_ms":"#,
                "\\u12",
                "\\q",
                "{{[[",
                "}}",
                "\u{0}\u{1}\u{2}",
                "\"",
                "1e",
                "-",
                "null",
                " ",
            ]),
            1..8,
        ),
    ) {
        let input = pieces.concat();
        assert_total(&input);
    }
}

/// Deterministic spot checks for the failure modes the properties are
/// sampling around, so a regression names the exact input.
#[test]
fn known_malformed_inputs_error_with_context() {
    for input in [
        "",
        "{",
        "{\"ev\"",
        "{\"ev\":\"x\",\"t_ms\":}",
        "{\"ev\":\"x\",\"t_ms\":1,}",
        "{\"ev\":\"x\",\"t_ms\":1}}",
        "{\"ev\":\"x\",\"t_ms\":1,\"s\":\"\u{0}",
        "{\"ev\":\"x\",\"t_ms\":1,\"o\":{\"nested\":1}}",
        "{\"ev\":\"x\",\"t_ms\":1,\"a\":[1]}",
        "{\"ev\":\"x\",\"t_ms\":\"not a number\"}",
        "{\"ev\":42,\"t_ms\":1}",
        "{\"ev\":\"x\",\"t_ms\":1,\"s\":\"\\u12\"}",
        "{\"ev\":\"x\",\"t_ms\":1,\"s\":\"\\ud800\"}",
    ] {
        let err = parse_line(input).expect_err(input);
        assert!(!err.is_empty(), "empty error for {input:?}");
    }
}

//! Embodied-carbon accounting for microgrid infrastructure.
//!
//! Constants follow the paper exactly (§4):
//!
//! * **Solar:** "low carbon" modules per the Global Electronics Council
//!   ultra-low-carbon criteria — 630 kgCO2/kW, i.e. 2,520 t per 4 MW step.
//! * **Wind:** 1,046 tCO2 per 3 MW turbine (Smoucha et al. 2016 life-cycle
//!   analysis).
//! * **Battery:** 62 kgCO2/kWh for LFP lithium-ion (Peiseler et al. 2024),
//!   i.e. 465 t per 7.5 MWh Fluence Smartstack unit.
//!
//! Per the GHG Protocol Scope-3 guidance quoted in the paper, embodied
//! emissions are a one-time investment accounted in the year of
//! acquisition — never amortized.

use serde::{Deserialize, Serialize};

use crate::composition::Composition;

/// Per-technology embodied-carbon factors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedDb {
    /// Solar PV embodied carbon, kgCO2 per kW(DC).
    pub solar_kg_per_kw: f64,
    /// Wind embodied carbon, kgCO2 per 3 MW turbine.
    pub wind_kg_per_turbine: f64,
    /// Battery embodied carbon, kgCO2 per kWh.
    pub battery_kg_per_kwh: f64,
}

impl Default for EmbodiedDb {
    fn default() -> Self {
        Self::paper()
    }
}

impl EmbodiedDb {
    /// The paper's constants.
    pub fn paper() -> Self {
        Self {
            solar_kg_per_kw: 630.0,
            wind_kg_per_turbine: 1_046_000.0,
            battery_kg_per_kwh: 62.0,
        }
    }

    /// Solar embodied emissions, tCO2.
    pub fn solar_t(&self, solar_kw: f64) -> f64 {
        solar_kw * self.solar_kg_per_kw / 1e3
    }

    /// Wind embodied emissions, tCO2.
    pub fn wind_t(&self, turbines: u32) -> f64 {
        turbines as f64 * self.wind_kg_per_turbine / 1e3
    }

    /// Battery embodied emissions, tCO2.
    pub fn battery_t(&self, battery_kwh: f64) -> f64 {
        battery_kwh * self.battery_kg_per_kwh / 1e3
    }

    /// Total embodied emissions of a composition, tCO2.
    pub fn total_t(&self, c: &Composition) -> f64 {
        self.solar_t(c.solar_kw) + self.wind_t(c.wind_turbines) + self.battery_t(c.battery_kwh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_increments() {
        let db = EmbodiedDb::paper();
        // 4 MW solar step = 2,520 t; one turbine = 1,046 t; one Smartstack
        // (7.5 MWh) = 465 t.
        assert_eq!(db.solar_t(4_000.0), 2_520.0);
        assert_eq!(db.wind_t(1), 1_046.0);
        assert_eq!(db.battery_t(7_500.0), 465.0);
    }

    #[test]
    fn houston_table1_rows_exact() {
        let db = EmbodiedDb::paper();
        // Rows of Table 1 (wind MW, solar MW, battery MWh) -> embodied t.
        let rows = [
            (Composition::BASELINE, 0.0),
            (Composition::new(4, 0.0, 7_500.0), 4_649.0),
            (Composition::new(3, 8_000.0, 22_500.0), 9_573.0),
            (Composition::new(4, 12_000.0, 52_500.0), 14_999.0),
            (Composition::new(10, 40_000.0, 60_000.0), 39_380.0),
        ];
        for (c, expected) in rows {
            assert!(
                (db.total_t(&c) - expected).abs() < 1e-9,
                "{c}: {} != {expected}",
                db.total_t(&c)
            );
        }
    }

    #[test]
    fn berkeley_table2_rows_exact() {
        let db = EmbodiedDb::paper();
        let rows = [
            (Composition::new(1, 4_000.0, 22_500.0), 4_961.0),
            (Composition::new(0, 12_000.0, 37_500.0), 9_885.0),
            (Composition::new(3, 12_000.0, 52_500.0), 13_953.0),
            (Composition::new(10, 40_000.0, 60_000.0), 39_380.0),
        ];
        for (c, expected) in rows {
            assert!(
                (db.total_t(&c) - expected).abs() < 1e-9,
                "{c}: {} != {expected}",
                db.total_t(&c)
            );
        }
    }

    #[test]
    fn baseline_has_zero_embodied() {
        assert_eq!(EmbodiedDb::paper().total_t(&Composition::BASELINE), 0.0);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let db = EmbodiedDb::paper();
        let c = Composition::new(5, 20_000.0, 30_000.0);
        let total = db.total_t(&c);
        let parts = db.wind_t(5) + db.solar_t(20_000.0) + db.battery_t(30_000.0);
        assert_eq!(total, parts);
    }
}

//! Site comparison: the same compositions at Berkeley (solar-rich, CAISO)
//! and Houston (wind-rich, ERCOT) — the paper's central point that optimal
//! microgrid design is location-specific.
//!
//! ```bash
//! cargo run --release --example site_comparison
//! ```

use microgrid_opt::prelude::*;

fn main() {
    let step_minutes = 60;
    let houston = ScenarioConfig {
        step_minutes,
        ..ScenarioConfig::paper_houston()
    }
    .prepare();
    let berkeley = ScenarioConfig {
        step_minutes,
        ..ScenarioConfig::paper_berkeley()
    }
    .prepare();

    println!("resource quality:");
    for s in [&houston, &berkeley] {
        println!(
            "  {:<14} solar CF {:>5.1} %   wind CF {:>5.1} %   grid CI {:>5.0} g/kWh",
            s.site_name(),
            s.data.solar_capacity_factor() * 100.0,
            s.data.wind_capacity_factor() * 100.0,
            s.data.ci_g_per_kwh.mean()
        );
    }

    // The same ~9.6-9.9 ktCO2 embodied budget spent three ways (solar
    // carries the storage it needs to serve the night).
    let candidates = [
        ("wind-heavy ", Composition::new(7, 0.0, 37_500.0)),
        ("solar-heavy", Composition::new(0, 12_000.0, 37_500.0)),
        ("mixed      ", Composition::new(3, 8_000.0, 22_500.0)),
    ];

    println!("\nsame embodied budget, different sites (operational tCO2/day | coverage %):");
    println!(
        "  {:<12} {:>12} {:>22} {:>22}",
        "strategy", "embodied(t)", "Houston", "Berkeley"
    );
    for (name, comp) in candidates {
        let h = simulate_year(&houston.data, &houston.load, &comp, &houston.config.sim);
        let b = simulate_year(&berkeley.data, &berkeley.load, &comp, &berkeley.config.sim);
        println!(
            "  {:<12} {:>12.0} {:>12.2} | {:>6.1}% {:>12.2} | {:>6.1}%",
            name,
            h.metrics.embodied_t,
            h.metrics.operational_t_per_day,
            h.metrics.coverage_pct(),
            b.metrics.operational_t_per_day,
            b.metrics.coverage_pct()
        );
    }

    println!("\nconclusion: the wind-heavy build wins in Houston, the solar-heavy");
    println!("build wins in Berkeley — microgrid design is inherently site-specific.");
}

#![forbid(unsafe_code)]
//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it from scratch and writes a JSON artifact next to the
//! printed report:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_pareto` | Figure 2 (both sites) |
//! | `table1_2_candidates` | Tables 1 and 2 |
//! | `fig3_projection` | Figure 3 (both sites) |
//! | `fig4_coverage` | Figure 4 (Houston) |
//! | `search_performance` | §4.4 comparison |
//! | `beyond_carbon` | §4.3 additional objectives |
//!
//! ## Environment variables
//!
//! | Variable | Effect |
//! |---|---|
//! | `MGOPT_FAST=1` | Reduced 27-point composition space (smoke tests). |
//! | `MGOPT_DENSE="<mw>,<mwh>"` | Denser-than-paper grid: solar step in MW, battery step in MWh (e.g. `"2,5"`). Malformed values abort with a usage message. |
//! | `MGOPT_TRACE=<path>` | Structured JSONL telemetry trace (spans, counters, per-generation search events) written to `path`; summarize with the `trace_report` bin. Disabled costs one relaxed atomic load per instrumented call. |
//! | `MGOPT_SIMD=0` | Route batch/fleet cohorts through the scalar chunk walk instead of the 4-lane SIMD kernel (the default, `1`, keeps SIMD on). The walks are bit-identical — lanes hold different candidates, never different timesteps — so this only changes speed. Resolved once per process. |
//! | `MGOPT_THREADS="1,2,4"` | Thread counts for the benchmark bins' scaling sweep (comma-separated positive integers; default `1,2,4`). Each count is clamped to available cores — the artifact records both requested and effective counts. Malformed values abort with a usage message. |
//! | `MGOPT_SERVER_ADDR=<host:port>` | `mgopt_serve` binds this TCP address instead of serving stdin/stdout (port `0` picks a free port, printed on stderr). |
//! | `MGOPT_ACCEPTORS=<n>` | Daemon: max concurrently served TCP connections (default 8); further connections wait in the accept queue. |
//! | `MGOPT_SERVER_CONCURRENCY=<n>` | Daemon: process-wide max in-flight studies across all connections (default 4); excess studies wait in FIFO order and announce themselves with a `Queued` frame. |
//! | `MGOPT_SERVER_CACHE=<n>` | Daemon: prepared-scenario cache capacity (default 8, LRU). |
//! | `MGOPT_SERVER_MAX_FRAME=<bytes>` | Daemon: max request-line length (default 1048576); longer lines get an `Oversized` error frame. |
//! | `MGOPT_BLESS=1` | `cargo test --test wire_golden` rewrites the golden wire fixtures (`tests/fixtures/wire/*.jsonl`) instead of comparing against them. Commit the refreshed fixtures together with the `WIRE_VERSION` bump that justified them. |
//!
//! The default (no variables) regenerates the full 1,089-point studies
//! untraced.

use std::path::PathBuf;

use mgopt_core::{PreparedScenario, ScenarioConfig};
use mgopt_microgrid::CompositionSpace;
use mgopt_telemetry::{self as telemetry, Counter, Stage};
use serde::{Deserialize, Serialize};

/// `true` when `MGOPT_FAST=1` (reduced spaces for smoke runs).
pub fn fast_mode() -> bool {
    std::env::var("MGOPT_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The denser-than-paper grid requested via `MGOPT_DENSE="<mw>,<mwh>"`
/// (solar step in MW, battery step in MWh), if any.
///
/// A malformed value prints the [`parse_dense`] error (which states the
/// expected format) and exits with status 2 — a silently ignored typo
/// would mislabel benchmark artifacts, and a mid-bench panic buries the
/// usage message under a backtrace.
pub fn dense_steps() -> Option<(f64, f64)> {
    let v = std::env::var("MGOPT_DENSE").ok()?;
    match parse_dense(&v) {
        Ok(steps) => Some(steps),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Parse an `MGOPT_DENSE` value: two comma-separated positive numbers
/// (solar step in MW, battery step in MWh). The `Err` message states the
/// expected format.
pub fn parse_dense(v: &str) -> Result<(f64, f64), String> {
    const USAGE: &str = "want \"<step_mw>,<step_mwh>\" with positive numbers, e.g. \"2,5\"";
    let parse = |s: &str| {
        s.trim()
            .parse::<f64>()
            .map_err(|_| format!("MGOPT_DENSE: bad number {s:?} ({USAGE})"))
    };
    match v.split(',').collect::<Vec<_>>()[..] {
        [mw, mwh] => {
            let steps = (parse(mw)?, parse(mwh)?);
            if steps.0 > 0.0 && steps.1 > 0.0 {
                Ok(steps)
            } else {
                Err(format!("MGOPT_DENSE: non-positive step in {v:?} ({USAGE})"))
            }
        }
        _ => Err(format!("MGOPT_DENSE: got {v:?} ({USAGE})")),
    }
}

/// Thread counts for the scaling sweep, from `MGOPT_THREADS="1,2,4"`
/// (comma-separated positive integers); default `[1, 2, 4]`.
///
/// Malformed values print the [`parse_threads`] error and exit with
/// status 2, like [`dense_steps`] — a silently ignored typo would
/// mislabel the scaling entries.
pub fn thread_counts() -> Vec<usize> {
    let Ok(v) = std::env::var("MGOPT_THREADS") else {
        return vec![1, 2, 4];
    };
    match parse_threads(&v) {
        Ok(counts) => counts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Parse an `MGOPT_THREADS` value: comma-separated positive integers.
/// The `Err` message states the expected format.
pub fn parse_threads(v: &str) -> Result<Vec<usize>, String> {
    const USAGE: &str = "want comma-separated positive integers, e.g. \"1,2,4\"";
    v.split(',')
        .map(|s| match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err(format!("MGOPT_THREADS: zero in {v:?} ({USAGE})")),
            Err(_) => Err(format!("MGOPT_THREADS: bad count {s:?} ({USAGE})")),
        })
        .collect()
}

/// One point of a benchmark bin's thread-scaling sweep: the full workload
/// re-timed with the worker pool capped at `threads_requested`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadScaling {
    /// Thread count asked for (an `MGOPT_THREADS` entry).
    pub threads_requested: usize,
    /// Worker count actually used after clamping to available cores —
    /// on a 1-core runner every request runs with 1 thread, and the
    /// artifact says so instead of implying a parallel measurement.
    pub threads_effective: usize,
    /// Fastest observed wall-clock for the workload at this pool size, ms.
    pub ms_min: f64,
}

/// Time `workload` at each requested thread count via
/// [`rayon::set_num_threads`], restoring the unlimited pool afterwards.
/// `reps` timings per count, keeping the fastest (see [`min_ms`]).
pub fn scaling_sweep<F: FnMut()>(
    counts: &[usize],
    reps: usize,
    mut workload: F,
) -> Vec<ThreadScaling> {
    let sweep = counts
        .iter()
        .map(|&req| {
            rayon::set_num_threads(req);
            let effective = rayon::current_num_threads();
            let samples: Vec<f64> = (0..reps.max(1))
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    workload();
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            ThreadScaling {
                threads_requested: req,
                threads_effective: effective,
                ms_min: min_ms(&samples),
            }
        })
        .collect();
    rayon::set_num_threads(0);
    sweep
}

/// The search space for the current mode: `MGOPT_FAST=1` shrinks it to 27
/// points, `MGOPT_DENSE="<mw>,<mwh>"` densifies the paper envelope (see
/// [`CompositionSpace::dense`]), default is the paper's 1,089-point grid.
pub fn space() -> CompositionSpace {
    if fast_mode() {
        CompositionSpace::tiny()
    } else if let Some((mw, mwh)) = dense_steps() {
        CompositionSpace::dense(mw, mwh)
    } else {
        CompositionSpace::paper()
    }
}

/// Prepared Houston scenario (paper configuration).
pub fn houston() -> PreparedScenario {
    ScenarioConfig {
        space: space(),
        ..ScenarioConfig::paper_houston()
    }
    .prepare()
}

/// Prepared Berkeley scenario (paper configuration).
pub fn berkeley() -> PreparedScenario {
    ScenarioConfig {
        space: space(),
        ..ScenarioConfig::paper_berkeley()
    }
    .prepare()
}

/// Fastest observed wall-clock of a timing series: on shared hosts timing
/// noise is strictly additive (interference only ever slows a run down),
/// so the minimum is the robust estimator of intrinsic cost.
pub fn min_ms(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// One stage row of a [`TelemetrySection`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryStage {
    /// Stage name (`"batch.kernel"`, …).
    pub name: String,
    /// Completed spans.
    pub calls: u64,
    /// Summed span time, ms (CPU-time semantics across worker threads).
    pub total_ms: f64,
}

/// The optional `telemetry` section of BENCH artifacts: per-stage time
/// breakdown plus engine throughput and memo-cache effectiveness from an
/// instrumented (telemetry-enabled) run. `bench_guard` sanity-checks the
/// section when present and tolerates artifacts without one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySection {
    /// Stages with at least one recorded span.
    pub stages: Vec<TelemetryStage>,
    /// Candidate-steps pushed through the engine kernels per second of
    /// kernel CPU time (`(batch.rows + fleet.rows) / kernel seconds`).
    pub evals_per_sec: f64,
    /// NSGA-II memo-cache hit rate over sampled genomes, `[0, 1]`; zero
    /// when the run recorded no cache activity.
    pub cache_hit_rate: f64,
}

/// Snapshot the current telemetry aggregates into an artifact section.
///
/// Call after an instrumented run, having called
/// [`mgopt_telemetry::reset_stats`] at the start of the window you want
/// attributed.
pub fn collect_telemetry_section() -> TelemetrySection {
    let stages: Vec<TelemetryStage> = telemetry::stage_totals()
        .into_iter()
        .filter(|s| s.calls > 0)
        .map(|s| TelemetryStage {
            name: s.name.to_string(),
            calls: s.calls,
            total_ms: s.total_ms,
        })
        .collect();
    let rows =
        telemetry::counter_value(Counter::BatchRows) + telemetry::counter_value(Counter::FleetRows);
    let kernel_ms =
        telemetry::stage_ms(Stage::BatchKernel) + telemetry::stage_ms(Stage::FleetKernel);
    let evals_per_sec = if kernel_ms > 0.0 {
        rows as f64 / (kernel_ms / 1e3)
    } else {
        0.0
    };
    let hits = telemetry::counter_value(Counter::CacheHits);
    let misses = telemetry::counter_value(Counter::CacheMisses);
    let cache_hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    TelemetrySection {
        stages,
        evals_per_sec,
        cache_hit_rate,
    }
}

/// Write a JSON artifact under `results/` (best effort — printing is the
/// primary output; artifact failures only warn).
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: could not create results dir");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_respects_fast_mode_env() {
        // Can't mutate the environment safely in parallel tests; just
        // check both space shapes are available.
        assert_eq!(CompositionSpace::paper().len(), 1_089);
        assert_eq!(CompositionSpace::tiny().len(), 27);
    }

    #[test]
    fn scenarios_prepare() {
        std::env::set_var("MGOPT_FAST", "1");
        let h = houston();
        assert_eq!(h.site_name(), "Houston, TX");
        std::env::remove_var("MGOPT_FAST");
    }

    #[test]
    fn parse_dense_accepts_two_positive_numbers() {
        assert_eq!(parse_dense("2,5"), Ok((2.0, 5.0)));
        assert_eq!(parse_dense(" 0.5 , 7.5 "), Ok((0.5, 7.5)));
    }

    #[test]
    fn parse_dense_errors_state_the_expected_format() {
        for bad in ["", "2", "2,5,9", "two,5", "2,", "-2,5", "0,5"] {
            let err = parse_dense(bad).unwrap_err();
            assert!(
                err.contains("MGOPT_DENSE") && err.contains("<step_mw>,<step_mwh>"),
                "unhelpful message for {bad:?}: {err}"
            );
        }
        assert!(parse_dense("two,5").unwrap_err().contains("bad number"));
        assert!(parse_dense("0,5").unwrap_err().contains("non-positive"));
    }

    #[test]
    fn parse_threads_accepts_positive_integer_lists() {
        assert_eq!(parse_threads("1,2,4"), Ok(vec![1, 2, 4]));
        assert_eq!(parse_threads(" 8 "), Ok(vec![8]));
        assert_eq!(parse_threads("4,2,1"), Ok(vec![4, 2, 1]));
    }

    #[test]
    fn parse_threads_errors_state_the_expected_format() {
        for bad in ["", "0", "1,0,4", "two", "1,,4", "-1", "1.5"] {
            let err = parse_threads(bad).unwrap_err();
            assert!(
                err.contains("MGOPT_THREADS") && err.contains("positive integers"),
                "unhelpful message for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn scaling_sweep_runs_each_count_and_restores_the_pool() {
        let before = rayon::current_num_threads();
        let mut runs = 0usize;
        let sweep = scaling_sweep(&[1, 2], 3, || runs += 1);
        assert_eq!(runs, 6);
        assert_eq!(sweep.len(), 2);
        for (point, req) in sweep.iter().zip([1usize, 2]) {
            assert_eq!(point.threads_requested, req);
            assert!(point.threads_effective >= 1 && point.threads_effective <= req);
            assert!(point.ms_min >= 0.0 && point.ms_min.is_finite());
        }
        assert_eq!(rayon::current_num_threads(), before);
    }

    #[test]
    fn thread_scaling_round_trips_through_json() {
        let point = ThreadScaling {
            threads_requested: 4,
            threads_effective: 1,
            ms_min: 12.5,
        };
        let json = serde_json::to_string(&point).unwrap();
        let back: ThreadScaling = serde_json::from_str(&json).unwrap();
        assert_eq!(back, point);
    }

    #[test]
    fn telemetry_section_round_trips_through_json() {
        let section = TelemetrySection {
            stages: vec![TelemetryStage {
                name: "batch.kernel".into(),
                calls: 4,
                total_ms: 12.5,
            }],
            evals_per_sec: 1.5e8,
            cache_hit_rate: 0.25,
        };
        let json = serde_json::to_string(&section).unwrap();
        let back: TelemetrySection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, section);
    }
}

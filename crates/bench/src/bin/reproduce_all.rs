//! Regenerates **every** table and figure of the paper in one run, in
//! paper order, and writes all JSON artifacts to `results/`.
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin reproduce_all
//! ```

use mgopt_core::experiments::{beyond, fig2, fig3, fig4, pruned, robustness, search};
use mgopt_core::report;
use mgopt_core::ScenarioConfig;
use mgopt_microgrid::Composition;
use mgopt_optimizer::{Nsga2Config, SuccessiveHalvingConfig};

fn main() {
    let started = std::time::Instant::now();
    let houston = mgopt_bench::houston();
    let berkeley = mgopt_bench::berkeley();

    println!("=== Figure 2 + Tables 1/2 ===============================================");
    let mut tables = Vec::new();
    for (scenario, slug, table_no) in [(&houston, "houston", 1), (&berkeley, "berkeley", 2)] {
        let (f2, table) = fig2::run_with_table(scenario);
        print!("{}", report::render_fig2(&f2));
        println!();
        println!("Table {table_no}:");
        print!("{}", report::render_candidate_table(&table));
        println!();
        mgopt_bench::write_artifact(&format!("fig2_{slug}"), &f2);
        mgopt_bench::write_artifact(&format!("table{table_no}_{slug}"), &table);
        tables.push(table);
    }

    println!("=== Figure 3 ============================================================");
    for table in &tables {
        let out = fig3::run(&table.site, &table.rows, 20);
        print!("{}", report::render_fig3(&out));
        println!();
        let slug = if table.site.starts_with("Houston") {
            "houston"
        } else {
            "berkeley"
        };
        mgopt_bench::write_artifact(&format!("fig3_{slug}"), &out);
    }

    println!("=== Figure 4 ============================================================");
    let f4 = fig4::run(&houston);
    print!("{}", report::render_fig4(&f4));
    println!();
    mgopt_bench::write_artifact("fig4_houston", &f4);

    println!("=== §4.4 search performance =============================================");
    for (scenario, slug) in [(&houston, "houston"), (&berkeley, "berkeley")] {
        let out = search::run_with_config(
            scenario,
            Nsga2Config {
                population_size: 50,
                max_trials: 350,
                seed: 42,
                ..Nsga2Config::default()
            },
        );
        print!("{}", report::render_search_perf(&out));
        println!();
        mgopt_bench::write_artifact(&format!("search_{slug}"), &out);
    }

    println!("=== §4.4 future work: pruned search =====================================");
    let sh = pruned::run(
        &houston,
        &SuccessiveHalvingConfig {
            initial_cohort: 512,
            eta: 2,
            min_fidelity: 0.125,
            seed: 42,
        },
    );
    println!(
        "Houston: recovery {:.1}% at {:.1} full-year equivalents ({:.2}x cost speed-up)",
        sh.recovery * 100.0,
        sh.equivalent_full_evaluations,
        sh.speedup_by_cost
    );
    mgopt_bench::write_artifact("pruned_houston", &sh);

    println!("\n=== §4.3 beyond carbon ==================================================");
    let bc = beyond::run(&houston, Composition::new(4, 8_000.0, 22_500.0), 42);
    for p in &bc.policies {
        println!(
            "  {:<26} {:>7.2} t/d  {:>9.0} $/yr  {:>5.0} cycles  {:>5.1} yrs",
            p.policy,
            p.operational_t_per_day,
            p.energy_cost_usd,
            p.battery_cycles,
            p.battery_lifetime_years
        );
    }
    mgopt_bench::write_artifact("beyond_carbon_houston", &bc);

    println!("\n=== robustness (Monte-Carlo) ============================================");
    let rb = robustness::run(
        &ScenarioConfig::paper_houston(),
        Composition::new(4, 0.0, 7_500.0),
        8,
    );
    println!(
        "  (12,0,7.5): operational {:.2} ± {:.2} t/d, coverage {:.1} ± {:.1} %",
        rb.operational_t_per_day.mean,
        rb.operational_t_per_day.std,
        rb.coverage_pct.mean,
        rb.coverage_pct.std
    );
    mgopt_bench::write_artifact("robustness_houston_12_0_7", &rb);

    println!(
        "\nall experiments regenerated in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

//! Step records and monitors.

use mgopt_units::{Power, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The resolved power balance of one simulation step.
///
/// Invariant: `p_delta = p_storage + p_grid − p_unmet`, where `p_grid` > 0
/// is export and < 0 is import. Unmet load enters with a minus sign
/// because shedding reduces the consumption that must be balanced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step start.
    pub t: SimTime,
    /// Step length.
    pub dt: SimDuration,
    /// Total production on the bus (≥ 0), kW.
    pub p_production: Power,
    /// Total consumption on the bus (≤ 0), kW.
    pub p_consumption: Power,
    /// Net actor power (production + consumption), kW.
    pub p_delta: Power,
    /// Storage terminal power (positive = charging), kW.
    pub p_storage: Power,
    /// Grid exchange (positive = export, negative = import), kW.
    pub p_grid: Power,
    /// Load shed due to a grid-import limit (≥ 0), kW.
    pub p_unmet: Power,
    /// Storage state of charge after the step.
    pub soc: f64,
}

impl StepRecord {
    /// Grid import as a non-negative number, kW.
    #[inline]
    pub fn grid_import(&self) -> Power {
        (-self.p_grid).max(Power::ZERO)
    }

    /// Grid export as a non-negative number, kW.
    #[inline]
    pub fn grid_export(&self) -> Power {
        self.p_grid.max(Power::ZERO)
    }

    /// Bus balance residual, kW — should be ~0.
    #[inline]
    pub fn balance_residual(&self) -> Power {
        self.p_delta - self.p_storage - self.p_grid + self.p_unmet
    }
}

/// An observer of simulation steps (Vessim's Monitor).
pub trait Monitor {
    /// Called once per resolved bus step, in time order.
    fn record(&mut self, rec: &StepRecord);
}

/// A monitor that stores every record in memory.
#[derive(Debug, Default)]
pub struct MemoryMonitor {
    records: Vec<StepRecord>,
}

impl MemoryMonitor {
    /// Create an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records so far.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Consume into the record list.
    pub fn into_records(self) -> Vec<StepRecord> {
        self.records
    }
}

impl Monitor for MemoryMonitor {
    fn record(&mut self, rec: &StepRecord) {
        self.records.push(*rec);
    }
}

/// A monitor that folds records into running aggregates without storing
/// them — the fast path for optimization sweeps where only annual metrics
/// matter.
#[derive(Debug, Clone, Default)]
pub struct AggregateMonitor {
    /// Number of steps seen.
    pub steps: usize,
    /// Energy produced on the bus, kWh.
    pub production_kwh: f64,
    /// Energy consumed (as a positive number), kWh.
    pub consumption_kwh: f64,
    /// Energy imported from the grid, kWh.
    pub grid_import_kwh: f64,
    /// Energy exported to the grid, kWh.
    pub grid_export_kwh: f64,
    /// Energy charged into storage, kWh.
    pub storage_charge_kwh: f64,
    /// Energy discharged from storage, kWh.
    pub storage_discharge_kwh: f64,
    /// Unserved energy under import limits, kWh.
    pub unmet_kwh: f64,
    /// Steps with any unmet load.
    pub unmet_steps: usize,
    /// Demand directly covered by concurrent on-site production, kWh.
    pub direct_selfconsumption_kwh: f64,
}

impl Monitor for AggregateMonitor {
    fn record(&mut self, rec: &StepRecord) {
        let h = rec.dt.hours();
        self.steps += 1;
        self.production_kwh += rec.p_production.kw() * h;
        self.consumption_kwh += -rec.p_consumption.kw() * h;
        self.grid_import_kwh += rec.grid_import().kw() * h;
        self.grid_export_kwh += rec.grid_export().kw() * h;
        if rec.p_storage.kw() > 0.0 {
            self.storage_charge_kwh += rec.p_storage.kw() * h;
        } else {
            self.storage_discharge_kwh += -rec.p_storage.kw() * h;
        }
        self.unmet_kwh += rec.p_unmet.kw() * h;
        if rec.p_unmet.kw() > 1e-9 {
            self.unmet_steps += 1;
        }
        self.direct_selfconsumption_kwh +=
            rec.p_production.kw().min(-rec.p_consumption.kw()).max(0.0) * h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(p_delta: f64, p_storage: f64, p_grid: f64) -> StepRecord {
        StepRecord {
            t: SimTime::START,
            dt: SimDuration::from_hours(1.0),
            p_production: Power::from_kw(p_delta.max(0.0)),
            p_consumption: Power::from_kw(p_delta.min(0.0)),
            p_delta: Power::from_kw(p_delta),
            p_storage: Power::from_kw(p_storage),
            p_grid: Power::from_kw(p_grid),
            p_unmet: Power::from_kw(-(p_delta - p_storage - p_grid)),
            soc: 0.5,
        }
    }

    #[test]
    fn import_export_split() {
        let r = rec(-60.0, 0.0, -60.0);
        assert_eq!(r.grid_import().kw(), 60.0);
        assert_eq!(r.grid_export().kw(), 0.0);
        let r = rec(40.0, 0.0, 40.0);
        assert_eq!(r.grid_import().kw(), 0.0);
        assert_eq!(r.grid_export().kw(), 40.0);
    }

    #[test]
    fn balance_residual_zero_when_consistent() {
        let r = rec(-60.0, -20.0, -40.0);
        assert_eq!(r.balance_residual().kw(), 0.0);
    }

    #[test]
    fn memory_monitor_collects_in_order() {
        let mut m = MemoryMonitor::new();
        m.record(&rec(1.0, 0.0, 1.0));
        m.record(&rec(2.0, 0.0, 2.0));
        assert_eq!(m.records().len(), 2);
        assert_eq!(m.records()[1].p_delta.kw(), 2.0);
    }

    #[test]
    fn aggregate_monitor_integrates_energy() {
        let mut m = AggregateMonitor::default();
        // One hour of 100 kW import, one hour of 50 kW export + 25 charge.
        let mut r1 = rec(-100.0, 0.0, -100.0);
        r1.p_production = Power::ZERO;
        r1.p_consumption = Power::from_kw(-100.0);
        m.record(&r1);
        let mut r2 = rec(75.0, 25.0, 50.0);
        r2.p_production = Power::from_kw(75.0);
        r2.p_consumption = Power::ZERO;
        m.record(&r2);
        assert_eq!(m.grid_import_kwh, 100.0);
        assert_eq!(m.grid_export_kwh, 50.0);
        assert_eq!(m.storage_charge_kwh, 25.0);
        assert_eq!(m.consumption_kwh, 100.0);
        assert_eq!(m.production_kwh, 75.0);
        assert_eq!(m.steps, 2);
    }

    #[test]
    fn direct_selfconsumption_is_min_of_prod_and_load() {
        let mut m = AggregateMonitor::default();
        let r = StepRecord {
            t: SimTime::START,
            dt: SimDuration::from_hours(2.0),
            p_production: Power::from_kw(30.0),
            p_consumption: Power::from_kw(-100.0),
            p_delta: Power::from_kw(-70.0),
            p_storage: Power::ZERO,
            p_grid: Power::from_kw(-70.0),
            p_unmet: Power::ZERO,
            soc: 0.0,
        };
        m.record(&r);
        assert_eq!(m.direct_selfconsumption_kwh, 60.0);
    }
}

// mgopt-lint-fixture: crate=microgrid

pub fn ticks() -> u128 {
    // mgopt-lint: allow(determinism)
    std::time::Instant::now().elapsed().as_millis()
}

// mgopt-lint: allow(quantum_supremacy) — not a rule this linter knows
pub fn fine() {}

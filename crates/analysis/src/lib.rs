#![forbid(unsafe_code)]
//! Workspace invariant linter (`mgopt_lint`).
//!
//! The repo's guarantees — bit-identical SIMD walks, byte-pinned wire
//! fixtures, reproducible fronts — rest on conventions no compiler
//! checks. This crate turns them into a rule registry enforced by CI:
//!
//! | Rule | Id | Contract |
//! |------|----|----------|
//! | R1 | `determinism` | No `Instant::now`/`SystemTime::now`/`thread_rng`, and no `HashMap`/`HashSet` import or call, in engine crates (`microgrid`, `optimizer`, `core`, `storage`, `weather`). |
//! | R2 | `panic_free` | No `unwrap`/`expect`/`panic!`-class macros/direct indexing in `core::wire` or `crates/server` — service paths answer with error frames. |
//! | R3 | `env_registry` | Every `MGOPT_*` literal read anywhere has a row in the `crates/bench/src/lib.rs` env-var table, and vice versa. |
//! | R4 | `schema_drift` | Every `ErrorCode` variant appears in the golden rejection fixtures and the `src/lib.rs` wire spec; every telemetry event/field emitted matches `trace_report`'s `required_fields` schema. |
//! | R5 | `unsafe_safety` | Every `unsafe` carries a `// SAFETY:` comment; all occurrences land in a machine-readable inventory. |
//! | — | `suppression` | `mgopt-lint: allow(...)` directives must name a known rule and justify themselves. |
//!
//! Suppress a finding with a comment on the same line or the line
//! above:
//!
//! ```text
//! // mgopt-lint: allow(determinism) — memo cache is keyed-only, never iterated
//! ```
//!
//! The justification (≥ 8 chars after the closing paren) is mandatory;
//! an allow without one still silences its target but is itself
//! reported under the `suppression` rule, so sloppy allows fail CI
//! rather than opening silent holes.
//!
//! The crate is std-only with an intentionally empty `[dependencies]`:
//! the linter gates CI, so it must never be the thing that breaks the
//! build.

pub mod lexer;
pub mod registry;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use lexer::Lexed;
use report::{Report, Rule};
use rules::Suppression;

/// Special responsibilities a file can carry. In workspace mode these
/// come from the path; in fixture mode from
/// `// mgopt-lint-fixture: role=...` directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `core::wire` — R2 applies; source of the `ErrorCode` enum.
    Wire,
    /// `crates/server` connection handling — R2 applies.
    Server,
    /// The bench env-var doc table — R3's registry.
    EnvTable,
    /// The `src/lib.rs` wire spec — R4 checks error codes against it.
    WireSpec,
    /// `trace_report`'s `required_fields` schema — R4's event registry.
    TraceSchema,
    /// Golden wire fixtures / tests — R4 checks error codes against it.
    WireGolden,
}

impl Role {
    fn from_name(name: &str) -> Option<Role> {
        Some(match name {
            "wire" => Role::Wire,
            "server" => Role::Server,
            "env-table" => Role::EnvTable,
            "wire-spec" => Role::WireSpec,
            "trace-schema" => Role::TraceSchema,
            "wire-golden" => Role::WireGolden,
            _ => return None,
        })
    }
}

/// One lexed `.rs` file plus its lint-relevant scope.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Owning crate directory name (`crates/<name>/…`), `root` for the
    /// umbrella crate, `tests` for root integration tests.
    pub crate_name: Option<String>,
    /// Special responsibilities (see [`Role`]).
    pub roles: Vec<Role>,
    /// Raw text (R4 runs `contains` checks against spec/golden files).
    pub raw: String,
    /// Token + comment streams.
    pub lexed: Lexed,
    /// `#[cfg(test)]` / `#[test]` line ranges, skipped by R1/R2/R4.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed `mgopt-lint: allow(...)` directives.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Build from source text, deriving scope from the path and then
    /// applying any `mgopt-lint-fixture:` directives in the text.
    pub fn from_source(rel: &str, raw: String) -> SourceFile {
        let lexed = lexer::lex(&raw);
        let test_regions = lexer::test_regions(&lexed);
        let suppressions = rules::parse_suppressions(&lexed.comments);
        let (mut crate_name, mut roles) = scope_from_path(rel);
        for c in &lexed.comments {
            let Some(idx) = c.text.find("mgopt-lint-fixture:") else {
                continue;
            };
            for kv in c.text[idx + "mgopt-lint-fixture:".len()..].split_whitespace() {
                if let Some(name) = kv.strip_prefix("crate=") {
                    crate_name = Some(name.to_string());
                } else if let Some(role) = kv.strip_prefix("role=").and_then(Role::from_name) {
                    if !roles.contains(&role) {
                        roles.push(role);
                    }
                }
            }
        }
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            roles,
            raw,
            lexed,
            test_regions,
            suppressions,
        }
    }

    /// Does this file carry `role`?
    pub fn has_role(&self, role: Role) -> bool {
        self.roles.contains(&role)
    }
}

/// A non-Rust file the registry rules read (golden `.jsonl` fixtures).
#[derive(Debug)]
pub struct DataFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Raw text.
    pub text: String,
}

/// The complete linted set.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Lexed `.rs` files.
    pub sources: Vec<SourceFile>,
    /// Golden data files (all treated as [`Role::WireGolden`] text).
    pub data: Vec<DataFile>,
}

/// Map a workspace-relative path to (crate, roles).
fn scope_from_path(rel: &str) -> (Option<String>, Vec<Role>) {
    let crate_name = if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().map(str::to_string)
    } else if rel.starts_with("src/") {
        Some("root".to_string())
    } else if rel.starts_with("tests/") {
        Some("tests".to_string())
    } else {
        None
    };
    let mut roles = Vec::new();
    match rel {
        "crates/core/src/wire.rs" => roles.push(Role::Wire),
        "crates/bench/src/lib.rs" => roles.push(Role::EnvTable),
        "crates/bench/src/bin/trace_report.rs" => roles.push(Role::TraceSchema),
        "src/lib.rs" => roles.push(Role::WireSpec),
        "tests/wire_golden.rs" => roles.push(Role::WireGolden),
        _ => {}
    }
    if rel.starts_with("crates/server/") {
        roles.push(Role::Server);
    }
    (crate_name, roles)
}

/// Lint the whole workspace rooted at `root`. Walks every tracked
/// `.rs` file outside `vendor/`, `target/`, and `tests/fixtures/`
/// trees, plus the golden `tests/fixtures/wire/*.jsonl` data.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut ws = Workspace::default();
    walk(root, root, &mut |rel, path| {
        if rel.ends_with(".rs") && !rel.contains("tests/fixtures/") {
            ws.sources
                .push(SourceFile::from_source(rel, fs::read_to_string(path)?));
        } else if rel.ends_with(".jsonl") && rel.contains("tests/fixtures/wire/") {
            ws.data.push(DataFile {
                rel: rel.to_string(),
                text: fs::read_to_string(path)?,
            });
        }
        Ok(())
    })?;
    Ok(run(ws))
}

/// Lint one directory as a self-contained set (fixture mode): every
/// `.rs` is a source (scoped by its directives), every `.jsonl` is
/// golden data.
pub fn lint_dir(dir: &Path) -> io::Result<Report> {
    let mut ws = Workspace::default();
    walk(dir, dir, &mut |rel, path| {
        if rel.ends_with(".rs") {
            ws.sources
                .push(SourceFile::from_source(rel, fs::read_to_string(path)?));
        } else if rel.ends_with(".jsonl") {
            ws.data.push(DataFile {
                rel: rel.to_string(),
                text: fs::read_to_string(path)?,
            });
        }
        Ok(())
    })?;
    Ok(run(ws))
}

/// Depth-first, name-sorted walk; skips VCS/build/vendored trees.
fn walk(
    root: &Path,
    dir: &Path,
    visit: &mut dyn FnMut(&str, &Path) -> io::Result<()>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), ".git" | "target" | "vendor" | ".claude") {
                continue;
            }
            walk(root, &path, visit)?;
        } else {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            visit(&rel, &path)?;
        }
    }
    Ok(())
}

/// Run every rule over a built [`Workspace`] and fold in suppressions.
pub fn run(ws: Workspace) -> Report {
    let mut findings = Vec::new();
    let mut inventory = Vec::new();
    for f in &ws.sources {
        rules::determinism(f, &mut findings);
        rules::panic_free(f, &mut findings);
        rules::unsafe_safety(f, &mut findings, &mut inventory);
        rules::suppression_hygiene(f, &mut findings);
    }
    registry::env_registry(&ws, &mut findings);
    registry::wire_schema(&ws, &mut findings);
    registry::telemetry_schema(&ws, &mut findings);

    let sups: BTreeMap<&str, &[Suppression]> = ws
        .sources
        .iter()
        .map(|f| (f.rel.as_str(), f.suppressions.as_slice()))
        .collect();
    let mut suppressed = 0usize;
    findings.retain(|f| {
        if f.rule == Rule::Suppression {
            return true;
        }
        let hit = sups
            .get(f.file.as_str())
            .is_some_and(|s| s.iter().any(|sup| rules::suppresses(sup, f.rule, f.line)));
        if hit {
            suppressed += 1;
        }
        !hit
    });
    findings.sort();
    findings.dedup();
    inventory.sort();
    Report {
        findings,
        unsafe_inventory: inventory,
        suppressed,
        files_scanned: ws.sources.len(),
    }
}

/// The fixture directories under `crates/analysis/tests/fixtures` and
/// the one rule each must demonstrate.
pub const FIXTURE_CASES: [(&str, Rule); 6] = [
    ("r1_determinism", Rule::Determinism),
    ("r2_panic_free", Rule::PanicFree),
    ("r3_env_registry", Rule::EnvRegistry),
    ("r4_schema_drift", Rule::SchemaDrift),
    ("r5_unsafe", Rule::UnsafeSafety),
    ("suppression", Rule::Suppression),
];

/// Self-test: for every rule, the `bad/` fixture must produce at least
/// one finding, all of them under exactly that rule, and the `good/`
/// fixture must be clean. Returns a per-case log, or a description of
/// the first failure.
pub fn self_test(fixtures: &Path) -> Result<String, String> {
    let mut log = String::new();
    for (dir, rule) in FIXTURE_CASES {
        let case = fixtures.join(dir);
        let bad =
            lint_dir(&case.join("bad")).map_err(|e| format!("{dir}/bad: cannot lint: {e}"))?;
        if bad.findings.is_empty() {
            return Err(format!(
                "{dir}/bad: expected `{}` findings, got none",
                rule.id()
            ));
        }
        if let Some(stray) = bad.findings.iter().find(|f| f.rule != rule) {
            return Err(format!(
                "{dir}/bad: expected only `{}` findings, got `{}` at {}:{} ({})",
                rule.id(),
                stray.rule.id(),
                stray.file,
                stray.line,
                stray.message
            ));
        }
        let good =
            lint_dir(&case.join("good")).map_err(|e| format!("{dir}/good: cannot lint: {e}"))?;
        if !good.is_clean() {
            return Err(format!(
                "{dir}/good: expected clean, got:\n{}",
                good.render_human()
            ));
        }
        log.push_str(&format!(
            "{dir}: bad fires {} x {}, good is clean\n",
            bad.findings.len(),
            rule.id()
        ));
    }
    Ok(log)
}

/// Convenience for assembling a [`Workspace`] from in-memory sources
/// (tests use this; the binary goes through the fs walkers).
pub fn workspace_from_sources(files: &[(&str, &str)]) -> Workspace {
    Workspace {
        sources: files
            .iter()
            .map(|(rel, src)| SourceFile::from_source(rel, (*src).to_string()))
            .collect(),
        data: Vec::new(),
    }
}

/// Re-exported for downstream convenience.
pub use report::{Finding as LintFinding, Report as LintReport, Rule as LintRule};

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-cosim
//!
//! A computing-and-energy co-simulation engine — the workspace's substitute
//! for Vessim (which itself builds on the mosaik discrete-event framework).
//!
//! The architecture mirrors Vessim's:
//!
//! * [`Signal`] — time-indexed data sources (weather-driven
//!   generation profiles, workload power traces, carbon intensity);
//! * [`Actor`] — power producers (positive) and consumers
//!   (negative) attached to the microgrid bus, each with its own step
//!   cadence;
//! * `Storage` (from `mgopt-storage`) — batteries on the bus;
//! * [`DispatchStrategy`] — the controller
//!   deciding how storage and grid interact each step;
//! * [`Microgrid`] — the bus that resolves the power
//!   balance `Σ actors − storage Δ − grid = 0` and produces step records;
//! * [`Monitor`] — observers collecting those records;
//! * two engines: a fixed-step fast path ([`Microgrid::run`])
//!   and a mosaik-style event-driven engine ([`EventEngine`]) that
//!   re-evaluates each actor at its own cadence and integrates exactly over
//!   piecewise-constant intervals. With equal cadences the two agree
//!   bit-for-bit (property-tested).

pub mod actor;
pub mod dispatch;
pub mod engine;
pub mod environment;
pub mod forecast;
pub mod microgrid;
pub mod record;
pub mod signal;

pub use actor::{Actor, SignalActor};
pub use dispatch::{BusState, DispatchStrategy, SelfConsumption};
pub use engine::EventEngine;
pub use environment::{Environment, FleetRecord};
pub use microgrid::{Microgrid, SimResult};
pub use record::{MemoryMonitor, Monitor, StepRecord};
pub use signal::{ConstantSignal, Signal};

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_storage::NullStorage;
    use mgopt_units::{Power, SimDuration, SimTime};

    #[test]
    fn end_to_end_smoke() {
        // 100 kW producer, 160 kW consumer, no storage: grid imports 60 kW.
        let actors: Vec<Box<dyn Actor>> = vec![
            Box::new(SignalActor::producer("pv", ConstantSignal::new(100.0))),
            Box::new(SignalActor::consumer("dc", ConstantSignal::new(160.0))),
        ];
        let mut mg = Microgrid::new(
            actors,
            Box::new(NullStorage::new()),
            Box::new(SelfConsumption::default()),
        );
        let mut mon = MemoryMonitor::new();
        mg.run(
            SimTime::START,
            SimDuration::from_hours(2.0),
            SimDuration::from_minutes(30.0),
            &mut [&mut mon],
        );
        assert_eq!(mon.records().len(), 4);
        for r in mon.records() {
            assert_eq!(r.p_grid, Power::from_kw(-60.0));
        }
    }
}

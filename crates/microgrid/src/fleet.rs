//! The multi-site fleet evaluation engine.
//!
//! The paper scores microgrid compositions one *site* at a time (Houston
//! vs. Berkeley), but the related work it cites — geo-distributed
//! allocation, distributed data-center microgrid management — and 24/7
//! carbon-free-energy reporting are *fleet*-level: several sites, one
//! carbon account, one concurrent grid-import profile. This module makes
//! that setting first-class.
//!
//! A **fleet plan** assigns one [`Composition`] to every site of a
//! [`FleetEvaluator`]. [`FleetEvaluator::evaluate_plans`] walks all sites
//! in a **single interleaved time-major pass**: the outer loop advances
//! the shared clock, the inner loops walk plans and sites, so every site
//! sample is loaded once per step for the whole cohort of plans — the same
//! columnar discipline as [`simulate_batch`](crate::simulate_batch), with
//! which this engine shares its chunking, [`StorageKernel`] dispatch and
//! raw accumulators.
//!
//! The interleaved walk is not just a performance trick: fleet peak
//! *concurrent* grid import (what a shared interconnect or a fleet-level
//! 24/7 CFE account sees) needs all sites' imports at the *same step*,
//! which independent per-site passes cannot provide without materializing
//! full import traces.
//!
//! ## Agreement guarantee
//!
//! Per-site results are **bit-identical** to running the single-site batch
//! engine on each site independently: the per-candidate recursion executes
//! the same arithmetic in the same order, only interleaved across sites.
//! `tests/fleet_agreement.rs` pins this exactly, and pins fleet totals to
//! the cosim [`Environment`](mgopt_cosim) oracle at ≤1e-9 relative.

use mgopt_telemetry::{self as telemetry, Counter, Stage};
use mgopt_units::{Power, TimeSeries};
use rayon::prelude::*;

use crate::batch::{BatchAcc, StorageKernel, CHUNK};
use crate::simd::{split_residual, BatchBackend, F64x4, LaneGroup, LaneParams, LanePolicy, LANES};

/// Steps per interleave block: sites advance in lockstep at block
/// granularity (their physics never couple — only the concurrent-import
/// metric does, which the block buffer keeps step-aligned). Large enough
/// to amortize the per-site loop setup, small enough that the buffer
/// (`BLOCK × CHUNK × 8` bytes ≈ 64 KiB) stays cache-resident.
const BLOCK: usize = 128;
use crate::composition::Composition;
use crate::metrics::AnnualResult;
use crate::simulate::SimConfig;
use crate::site::SiteData;

/// One member site of a fleet: prepared inputs plus its simulation config.
#[derive(Debug, Clone, Copy)]
pub struct FleetSite<'a> {
    /// Display name ("houston").
    pub name: &'a str,
    /// Prepared site data (unit profiles, CI, prices).
    pub data: &'a SiteData,
    /// The site's load trace, kW.
    pub load: &'a TimeSeries,
    /// Simulation parameters for this site.
    pub cfg: &'a SimConfig,
}

/// Fleet-level aggregates of one plan, over the simulated window.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Fleet operational emissions, tCO2 per day (sum over sites).
    pub operational_t_per_day: f64,
    /// Fleet operational emissions scaled to a year, tCO2.
    pub operational_t_per_year: f64,
    /// Total embodied emissions of every site's build-out, tCO2.
    pub embodied_t: f64,
    /// Peak *concurrent* grid import across the fleet, kW: the maximum
    /// over time of the per-step sum of site imports. Only an interleaved
    /// walk can report this without storing full import traces. `None`
    /// when tracking was disabled via
    /// [`FleetEvaluator::with_peak_tracking`].
    pub peak_concurrent_import_kw: Option<f64>,
    /// Grid import per site, MWh (site order of the evaluator).
    pub site_import_mwh: Vec<f64>,
    /// Total fleet grid import, MWh.
    pub grid_import_mwh: f64,
    /// Net fleet electricity cost, USD.
    pub energy_cost_usd: f64,
}

impl FleetMetrics {
    /// Violation of a peak concurrent-import cap, kW: `0.0` when the
    /// fleet's peak stays at or under `cap_kw`, otherwise the exceedance.
    /// This is the constraint magnitude fleet-plan searches feed into
    /// constraint-dominance.
    ///
    /// # Panics
    /// Panics when peak tracking was disabled — a cap check against an
    /// untracked peak would silently pass.
    pub fn peak_cap_violation_kw(&self, cap_kw: f64) -> f64 {
        let peak = self
            .peak_concurrent_import_kw
            .expect("peak tracking disabled: cannot check an import cap");
        (peak - cap_kw).max(0.0)
    }
}

/// The result of evaluating one fleet plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// One single-site result per member, in site order — bit-identical to
    /// an independent [`BatchEvaluator`](crate::BatchEvaluator) run.
    pub per_site: Vec<AnnualResult>,
    /// Fleet-level aggregates.
    pub fleet: FleetMetrics,
}

impl FleetResult {
    /// The plan that produced this result: one composition per site, in
    /// site order.
    pub fn plan(&self) -> Vec<Composition> {
        self.per_site.iter().map(|r| r.composition).collect()
    }
}

/// The multi-site batched engine: one cohort of plans, all sites, one
/// interleaved time-major pass.
#[derive(Debug, Clone)]
pub struct FleetEvaluator<'a> {
    sites: Vec<FleetSite<'a>>,
    track_peak: bool,
    backend: BatchBackend,
}

impl<'a> FleetEvaluator<'a> {
    /// Create an evaluator over member sites.
    ///
    /// # Panics
    /// Panics when `sites` is empty, when the sites do not share one
    /// step/length (the fleet advances on a single clock), or when a
    /// site's load trace does not match its site data.
    pub fn new(sites: Vec<FleetSite<'a>>) -> Self {
        assert!(!sites.is_empty(), "fleet has no sites");
        let step = sites[0].data.step();
        let len = sites[0].data.len();
        for s in &sites {
            assert_eq!(s.data.step(), step, "site {}: step mismatch", s.name);
            assert_eq!(s.data.len(), len, "site {}: length mismatch", s.name);
            assert_eq!(
                s.load.step(),
                s.data.step(),
                "site {}: load step mismatch",
                s.name
            );
            assert_eq!(
                s.load.len(),
                s.data.len(),
                "site {}: load length mismatch",
                s.name
            );
        }
        Self {
            sites,
            track_peak: true,
            backend: BatchBackend::Auto,
        }
    }

    /// Enable or disable concurrent-peak tracking (on by default).
    /// Tracking costs one store per candidate-step plus a vectorized
    /// per-block fold (a few percent of the pass); with it off the pass
    /// does exactly the work of independent per-site batch sweeps and
    /// [`FleetMetrics::peak_concurrent_import_kw`] is `None`.
    pub fn with_peak_tracking(mut self, on: bool) -> Self {
        self.track_peak = on;
        self
    }

    /// Force a chunk-walk backend (default: follow the `MGOPT_SIMD`
    /// toggle). Both walks are pinned bit-identical, per-site and on
    /// fleet aggregates.
    pub fn with_backend(mut self, backend: BatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The member sites, in evaluation order.
    pub fn sites(&self) -> &[FleetSite<'a>] {
        &self.sites
    }

    /// Number of member sites.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Steps in the shared simulation horizon.
    pub fn len(&self) -> usize {
        self.sites[0].data.len()
    }

    /// `true` when the horizon is empty (never, for prepared sites).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluate one plan (one composition per site) over the full horizon.
    pub fn evaluate(&self, plan: &[Composition]) -> FleetResult {
        self.evaluate_plans(std::slice::from_ref(&plan.to_vec()))
            .pop()
            .expect("one plan in, one result out")
    }

    /// Evaluate a cohort of plans over the full horizon, in input order.
    pub fn evaluate_plans(&self, plans: &[Vec<Composition>]) -> Vec<FleetResult> {
        self.evaluate_plans_period(plans, self.len())
    }

    /// Evaluate a cohort of plans over only the first `n_steps` — the
    /// low-fidelity window used by pruning searches, normalized exactly
    /// like [`simulate_batch_period`](crate::simulate_batch_period).
    ///
    /// # Panics
    /// Panics when `n_steps` is zero (a zero-step window has no rates to
    /// report; the guard matches the single-site engines) or when a plan's
    /// length differs from the number of sites.
    pub fn evaluate_plans_period(
        &self,
        plans: &[Vec<Composition>],
        n_steps: usize,
    ) -> Vec<FleetResult> {
        assert!(n_steps > 0, "n_steps must be positive");
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(
                p.len(),
                self.sites.len(),
                "plan {i}: {} compositions for {} sites",
                p.len(),
                self.sites.len()
            );
        }
        if plans.is_empty() {
            return Vec::new();
        }

        let n = n_steps.min(self.len());
        let dt_h = self.sites[0].data.step().hours();
        // Demand is per-site, identical across plans: accumulate it once.
        let demand_kwh: Vec<f64> = self
            .sites
            .iter()
            .map(|s| s.load.values()[..n].iter().sum::<f64>() * dt_h)
            .collect();

        // The lane walk records no SoC traces; any site that wants them
        // routes the whole cohort through the scalar oracle walk.
        let any_soc = self.sites.iter().any(|s| s.cfg.record_soc);
        let use_simd = self.backend.use_simd() && !any_soc && !self.sites[0].data.step().is_zero();

        // Stage-total snapshots attribute this call's prepare/kernel time
        // in the emitted event (see the batch engine for the caveat).
        let trace = telemetry::enabled().then(|| {
            (
                // mgopt-lint: allow(determinism) — wall clock feeds the fleet_eval trace only, never results
                std::time::Instant::now(),
                telemetry::stage_ms(Stage::FleetPrepare),
                telemetry::stage_ms(Stage::FleetKernel),
                telemetry::counter_value(Counter::SimdRows),
                telemetry::counter_value(Counter::SimdRemainderRows),
            )
        });

        let chunks: Vec<&[Vec<Composition>]> = plans.chunks(CHUNK).collect();
        let nested: Vec<Vec<FleetResult>> = chunks
            .into_par_iter()
            .map(|chunk| {
                if use_simd {
                    self.run_chunk_simd(chunk, n, &demand_kwh)
                } else {
                    self.run_chunk(chunk, n, &demand_kwh)
                }
            })
            .collect();
        let out: Vec<FleetResult> = nested.into_iter().flatten().collect();

        if let Some((t0, prep0, kern0, simd0, rem0)) = trace {
            telemetry::Event::new("fleet_eval")
                .u64("plans", plans.len() as u64)
                .u64("sites", self.sites.len() as u64)
                .u64("steps", n as u64)
                .u64("chunks", plans.len().div_ceil(CHUNK) as u64)
                .u64("rows", (plans.len() * self.sites.len() * n) as u64)
                .bool("simd", use_simd)
                .u64(
                    "simd_rows",
                    telemetry::counter_value(Counter::SimdRows) - simd0,
                )
                .u64(
                    "simd_remainder_rows",
                    telemetry::counter_value(Counter::SimdRemainderRows) - rem0,
                )
                .f64(
                    "prepare_ms",
                    telemetry::stage_ms(Stage::FleetPrepare) - prep0,
                )
                .f64("kernel_ms", telemetry::stage_ms(Stage::FleetKernel) - kern0)
                .f64("wall_ms", t0.elapsed().as_secs_f64() * 1e3)
                .emit();
        }
        out
    }

    /// Evaluate one chunk of plans over `0..n`, interleaved time-major.
    fn run_chunk(
        &self,
        plans: &[Vec<Composition>],
        n: usize,
        demand_kwh: &[f64],
    ) -> Vec<FleetResult> {
        let ns = self.sites.len();
        let m = plans.len();
        let dt = self.sites[0].data.step();
        let steps_per_hour = (3_600 / dt.secs()).max(1) as usize;

        let prepare_span = telemetry::span(Stage::FleetPrepare);

        // Per-site columns and per-site policy, hoisted out of the loop.
        let pv: Vec<&[f64]> = self
            .sites
            .iter()
            .map(|s| s.data.pv_unit_kw.values())
            .collect();
        let wind: Vec<&[f64]> = self
            .sites
            .iter()
            .map(|s| s.data.wind_unit_kw.values())
            .collect();
        let load: Vec<&[f64]> = self.sites.iter().map(|s| s.load.values()).collect();
        let ci: Vec<&[f64]> = self
            .sites
            .iter()
            .map(|s| s.data.ci_g_per_kwh.values())
            .collect();
        let price: Vec<&[f64]> = self
            .sites
            .iter()
            .map(|s| s.data.price_usd_per_mwh.values())
            .collect();
        let policies: Vec<_> = self.sites.iter().map(|s| s.cfg.policy).collect();
        let islanded: Vec<bool> = policies.iter().map(|p| p.is_islanded()).collect();
        let record_soc: Vec<bool> = self.sites.iter().map(|s| s.cfg.record_soc).collect();

        // Flat per-(site, plan) state, site-major: index `s * m + p`, so
        // the hot per-site inner loop walks contiguous state exactly like
        // the single-site batch engine.
        let solar_kw: Vec<f64> = (0..ns)
            .flat_map(|s| plans.iter().map(move |p| p[s].solar_kw))
            .collect();
        let wind_n: Vec<f64> = (0..ns)
            .flat_map(|s| plans.iter().map(move |p| p[s].wind_turbines as f64))
            .collect();
        let mut kernels: Vec<StorageKernel> = (0..ns)
            .flat_map(|s| {
                plans
                    .iter()
                    .map(move |p| (s, &p[s]))
                    .map(|(s, c)| StorageKernel::for_composition(c, &self.sites[s].cfg.battery))
            })
            .collect();
        let mut accs: Vec<BatchAcc> = vec![BatchAcc::default(); m * ns];
        let mut peaks: Vec<f64> = vec![0.0; m];
        let any_soc = record_soc.iter().any(|&r| r);
        let mut soc_traces: Vec<Vec<f64>> = if any_soc {
            (0..m * ns)
                .map(|i| {
                    if record_soc[i / m] {
                        Vec::with_capacity(n / steps_per_hour + 1)
                    } else {
                        Vec::new()
                    }
                })
                .collect()
        } else {
            Vec::new()
        };

        // Per site, consecutive plans sharing that site's (wind, solar)
        // pair share one generation computation per step — in uniform
        // sweep order these are the battery-dimension runs, exactly as in
        // the single-site engine (and cross-product cohorts get the long
        // shared runs of their outer dimensions for free). Membership is
        // bitwise, like the batch engine's, so the shared value equals
        // every member's own per-candidate expression exactly.
        let groups: Vec<Vec<(usize, usize)>> = (0..ns)
            .map(|s| {
                let mut g = Vec::new();
                let mut start = 0usize;
                for k in 1..=m {
                    if k == m
                        || solar_kw[s * m + k].to_bits() != solar_kw[s * m + start].to_bits()
                        || wind_n[s * m + k].to_bits() != wind_n[s * m + start].to_bits()
                    {
                        g.push((start, k));
                        start = k;
                    }
                }
                g
            })
            .collect();

        // The interleave runs in blocks of `BLOCK` steps: each site is
        // advanced `BLOCK` steps with the exact single-site batch inner
        // loop (sites are physically independent — only the *metrics*
        // couple them), buffering per-step fleet imports so the peak fold
        // still sees concurrent, step-aligned values. Switching sites per
        // block instead of per step keeps the hot loop's shape (and cost)
        // identical to the single-site engine.
        let block = BLOCK.min(n);
        let track_peak = self.track_peak;
        let mut import_buf = vec![0.0f64; block * m];

        drop(prepare_span);
        let kernel_span = telemetry::span(Stage::FleetKernel);

        for i0 in (0..n).step_by(block) {
            let i1 = (i0 + block).min(n);
            for s in 0..ns {
                let (pv_s, wind_s_col, load_s, ci_s, price_s) =
                    (pv[s], wind[s], load[s], ci[s], price[s]);
                let policy = policies[s];
                let isl = islanded[s];
                let site_soc = any_soc && record_soc[s];
                let first_site = s == 0;
                let base = s * m;
                // Subslices give the inner loop the exact shape of the
                // single-site batch kernel (no `base +` arithmetic or
                // widened bounds checks in the hot path).
                let solar_s = &solar_kw[base..base + m];
                let wind_s = &wind_n[base..base + m];
                let kernels_s = &mut kernels[base..base + m];
                let accs_s = &mut accs[base..base + m];
                for (i, row) in (i0..i1).zip(import_buf.chunks_exact_mut(m)) {
                    let (pv_i, wind_i, load_i, ci_i, price_i) =
                        (pv_s[i], wind_s_col[i], load_s[i], ci_s[i], price_s[i]);
                    let rec_soc = site_soc && i % steps_per_hour == 0;
                    for &(g0, g1) in &groups[s] {
                        let gen = solar_s[g0] * pv_i + wind_s[g0] * wind_i;
                        let p_delta = gen - load_i;
                        for p in g0..g1 {
                            let request = policy.storage_request(
                                Power::from_kw(p_delta),
                                kernels_s[p].soc(),
                                ci_i,
                            );
                            let p_storage = kernels_s[p].update_kw(request, dt);
                            let residual = p_delta - p_storage;
                            let (import, export, unmet) = if isl && residual < 0.0 {
                                (0.0, 0.0, -residual)
                            } else if residual < 0.0 {
                                (-residual, 0.0, 0.0)
                            } else {
                                (0.0, residual, 0.0)
                            };
                            accs_s[p].record(
                                gen, load_i, import, export, p_storage, unmet, ci_i, price_i,
                            );
                            // Step-aligned fleet import: the first site
                            // overwrites the block buffer (no reset pass),
                            // later sites accumulate. The peak fold runs
                            // once per block, branchless, so the hot
                            // candidate loop stays store-only. (The
                            // `track_peak` guard is loop-invariant; LLVM
                            // unswitches it out of the hot path.)
                            if track_peak {
                                if first_site {
                                    row[p] = import;
                                } else {
                                    row[p] += import;
                                }
                            }
                            if rec_soc {
                                soc_traces[base + p].push(kernels_s[p].soc());
                            }
                        }
                    }
                }
            }
            // Fold the block's concurrent imports into the running peaks:
            // branchless f64::max over contiguous rows auto-vectorizes, so
            // the fold costs a fraction of an op per candidate-step.
            if track_peak {
                for row in import_buf.chunks_exact(m).take(i1 - i0) {
                    for (peak, &v) in peaks.iter_mut().zip(row) {
                        *peak = peak.max(v);
                    }
                }
            }
        }

        drop(kernel_span);
        telemetry::add(Counter::FleetChunks, 1);
        telemetry::add(Counter::FleetRows, (m * ns * n) as u64);

        let cycles: Vec<f64> = kernels.iter().map(|k| k.equivalent_full_cycles()).collect();
        self.assemble(plans, &accs, &cycles, &peaks, soc_traces, n, demand_kwh)
    }

    /// Evaluate one chunk of plans over `0..n` with the lane-wide SIMD
    /// kernel: per site, full lane groups walk four plans at once and
    /// the tail (< 4 plans) runs the scalar kernel. Bit-identical to
    /// [`Self::run_chunk`], including the concurrent-peak fold (which
    /// consumes the same per-step import values).
    fn run_chunk_simd(
        &self,
        plans: &[Vec<Composition>],
        n: usize,
        demand_kwh: &[f64],
    ) -> Vec<FleetResult> {
        let ns = self.sites.len();
        let m = plans.len();
        let dt = self.sites[0].data.step();
        let dt_h = dt.hours();

        let prepare_span = telemetry::span(Stage::FleetPrepare);

        let pv: Vec<&[f64]> = self
            .sites
            .iter()
            .map(|s| s.data.pv_unit_kw.values())
            .collect();
        let wind: Vec<&[f64]> = self
            .sites
            .iter()
            .map(|s| s.data.wind_unit_kw.values())
            .collect();
        let load: Vec<&[f64]> = self.sites.iter().map(|s| s.load.values()).collect();
        let ci: Vec<&[f64]> = self
            .sites
            .iter()
            .map(|s| s.data.ci_g_per_kwh.values())
            .collect();
        let price: Vec<&[f64]> = self
            .sites
            .iter()
            .map(|s| s.data.price_usd_per_mwh.values())
            .collect();
        let policies: Vec<_> = self.sites.iter().map(|s| s.cfg.policy).collect();
        let islanded: Vec<bool> = policies.iter().map(|p| p.is_islanded()).collect();

        // Site-major lane state: lane_groups[s][g] covers plans
        // `g*LANES .. g*LANES+LANES` at site `s`.
        let r0 = (m / LANES) * LANES;
        let rem = m - r0;
        let mut lane_groups: Vec<Vec<LaneGroup>> = (0..ns)
            .map(|s| {
                (0..r0)
                    .step_by(LANES)
                    .map(|p0| {
                        let quad: [Composition; LANES] = std::array::from_fn(|j| plans[p0 + j][s]);
                        LaneGroup::new(&quad, &self.sites[s].cfg.battery)
                    })
                    .collect()
            })
            .collect();
        let lane_params: Vec<LaneParams> = self
            .sites
            .iter()
            .map(|s| LaneParams::new(&s.cfg.battery, dt_h))
            .collect();
        let lane_policies: Vec<LanePolicy> = policies.iter().map(|&p| LanePolicy::new(p)).collect();

        // Scalar remainder state, site-major: index `s * rem + j` for
        // plan `r0 + j`.
        let mut rem_kernels: Vec<StorageKernel> = (0..ns)
            .flat_map(|s| {
                (r0..m).map(move |p| {
                    StorageKernel::for_composition(&plans[p][s], &self.sites[s].cfg.battery)
                })
            })
            .collect();
        let mut rem_accs: Vec<BatchAcc> = vec![BatchAcc::default(); rem * ns];

        let mut peaks: Vec<f64> = vec![0.0; m];
        let block = BLOCK.min(n);
        let track_peak = self.track_peak;
        let mut import_buf = vec![0.0f64; block * m];

        drop(prepare_span);
        let kernel_span = telemetry::span(Stage::FleetKernel);

        for i0 in (0..n).step_by(block) {
            let i1 = (i0 + block).min(n);
            for s in 0..ns {
                let (pv_s, wind_s_col, load_s, ci_s, price_s) =
                    (pv[s], wind[s], load[s], ci[s], price[s]);
                let lane_policy = lane_policies[s];
                let params = lane_params[s];
                let policy = policies[s];
                let isl = islanded[s];
                let first_site = s == 0;
                let groups_s = &mut lane_groups[s];
                let rem_base = s * rem;
                for (i, row) in (i0..i1).zip(import_buf.chunks_exact_mut(m)) {
                    let (pv_i, wind_i, load_i, ci_i, price_i) =
                        (pv_s[i], wind_s_col[i], load_s[i], ci_s[i], price_s[i]);
                    let pv_v = F64x4::splat(pv_i);
                    let wind_v = F64x4::splat(wind_i);
                    let load_v = F64x4::splat(load_i);
                    let ci_v = F64x4::splat(ci_i);
                    let price_v = F64x4::splat(price_i);
                    for (g_idx, g) in groups_s.iter_mut().enumerate() {
                        let gen = g.solar * pv_v + g.wind * wind_v;
                        let p_delta = gen - load_v;
                        let request = lane_policy.request(p_delta, g.kernel.soc(), ci_i);
                        let p_storage = g.kernel.step(request, &params);
                        let residual = p_delta - p_storage;
                        let (import, export, unmet) = split_residual(residual, isl);
                        g.acc
                            .record(gen, load_v, import, export, p_storage, unmet, ci_v, price_v);
                        if track_peak {
                            let p0 = g_idx * LANES;
                            for j in 0..LANES {
                                if first_site {
                                    row[p0 + j] = import.lane(j);
                                } else {
                                    row[p0 + j] += import.lane(j);
                                }
                            }
                        }
                    }
                    for j in 0..rem {
                        let comp = &plans[r0 + j][s];
                        let gen = comp.solar_kw * pv_i + comp.wind_turbines as f64 * wind_i;
                        let p_delta = gen - load_i;
                        let request = policy.storage_request(
                            Power::from_kw(p_delta),
                            rem_kernels[rem_base + j].soc(),
                            ci_i,
                        );
                        let p_storage = rem_kernels[rem_base + j].update_kw(request, dt);
                        let residual = p_delta - p_storage;
                        let (import, export, unmet) = if isl && residual < 0.0 {
                            (0.0, 0.0, -residual)
                        } else if residual < 0.0 {
                            (-residual, 0.0, 0.0)
                        } else {
                            (0.0, residual, 0.0)
                        };
                        rem_accs[rem_base + j]
                            .record(gen, load_i, import, export, p_storage, unmet, ci_i, price_i);
                        if track_peak {
                            if first_site {
                                row[r0 + j] = import;
                            } else {
                                row[r0 + j] += import;
                            }
                        }
                    }
                }
            }
            // Same branchless per-block fold as the scalar walk, over the
            // same import values.
            if track_peak {
                for row in import_buf.chunks_exact(m).take(i1 - i0) {
                    for (peak, &v) in peaks.iter_mut().zip(row) {
                        *peak = peak.max(v);
                    }
                }
            }
        }

        drop(kernel_span);
        telemetry::add(Counter::FleetChunks, 1);
        telemetry::add(Counter::FleetRows, (m * ns * n) as u64);
        telemetry::add(Counter::SimdRows, (r0 * ns * n) as u64);
        telemetry::add(Counter::SimdRemainderRows, (rem * ns * n) as u64);

        // Materialize the site-major (s * m + p) layout the shared
        // assembly expects.
        let rem_accs = &rem_accs;
        let rem_kernels = &rem_kernels;
        let accs: Vec<BatchAcc> = (0..ns)
            .flat_map(|s| {
                let lanes_s = &lane_groups[s];
                let rem_base = s * rem;
                (0..m).map(move |p| {
                    if p < r0 {
                        lanes_s[p / LANES].acc.extract(p % LANES)
                    } else {
                        rem_accs[rem_base + (p - r0)].clone()
                    }
                })
            })
            .collect();
        let cycles: Vec<f64> = (0..ns)
            .flat_map(|s| {
                let lanes_s = &lane_groups[s];
                let rem_base = s * rem;
                (0..m).map(move |p| {
                    if p < r0 {
                        lanes_s[p / LANES].kernel.equivalent_full_cycles(p % LANES)
                    } else {
                        rem_kernels[rem_base + (p - r0)].equivalent_full_cycles()
                    }
                })
            })
            .collect();
        self.assemble(plans, &accs, &cycles, &peaks, Vec::new(), n, demand_kwh)
    }

    /// Scale one chunk's raw accumulators into per-plan results — shared
    /// by the scalar and lane-wide walks. `accs`/`cycles` are site-major
    /// (`s * m + p`); `soc_traces` is empty unless a site records SoC
    /// (scalar walk only).
    #[allow(clippy::too_many_arguments)] // one parameter per chunk output
    fn assemble(
        &self,
        plans: &[Vec<Composition>],
        accs: &[BatchAcc],
        cycles: &[f64],
        peaks: &[f64],
        mut soc_traces: Vec<Vec<f64>>,
        n: usize,
        demand_kwh: &[f64],
    ) -> Vec<FleetResult> {
        let ns = self.sites.len();
        let m = plans.len();
        let dt_h = self.sites[0].data.step().hours();
        let any_soc = !soc_traces.is_empty();
        let days = n as f64 * dt_h / 24.0;
        (0..m)
            .map(|p| {
                let per_site: Vec<AnnualResult> = (0..ns)
                    .map(|s| {
                        let idx = s * m + p;
                        let comp = plans[p][s];
                        AnnualResult {
                            composition: comp,
                            metrics: accs[idx].finish(
                                &comp,
                                self.sites[s].cfg,
                                cycles[idx],
                                n,
                                days,
                                demand_kwh[s],
                                dt_h,
                            ),
                            soc_trace_hourly: if any_soc {
                                std::mem::take(&mut soc_traces[idx])
                            } else {
                                Vec::new()
                            },
                        }
                    })
                    .collect();
                let fleet = FleetMetrics {
                    operational_t_per_day: per_site
                        .iter()
                        .map(|r| r.metrics.operational_t_per_day)
                        .sum(),
                    operational_t_per_year: per_site
                        .iter()
                        .map(|r| r.metrics.operational_t_per_year)
                        .sum(),
                    embodied_t: per_site.iter().map(|r| r.metrics.embodied_t).sum(),
                    peak_concurrent_import_kw: self.track_peak.then(|| peaks[p]),
                    site_import_mwh: per_site.iter().map(|r| r.metrics.grid_import_mwh).collect(),
                    grid_import_mwh: per_site.iter().map(|r| r.metrics.grid_import_mwh).sum(),
                    energy_cost_usd: per_site.iter().map(|r| r.metrics.energy_cost_usd).sum(),
                };
                FleetResult { per_site, fleet }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchEvaluator, Evaluator};
    use crate::site::Site;
    use mgopt_units::SimDuration;
    use mgopt_workload::HpcWorkload;

    fn two_sites() -> (SiteData, SiteData, TimeSeries, TimeSeries) {
        let step = SimDuration::from_hours(1.0);
        let houston = Site::houston().prepare(step, 42);
        let berkeley = Site::berkeley().prepare(step, 42);
        let load_h = HpcWorkload::perlmutter_like(42).generate(step);
        let load_b = HpcWorkload::perlmutter_like(7).generate(step);
        (houston, berkeley, load_h, load_b)
    }

    #[test]
    fn per_site_results_are_bit_identical_to_batch_engine() {
        let (h, b, lh, lb) = two_sites();
        let cfg = SimConfig::default();
        let fleet = FleetEvaluator::new(vec![
            FleetSite {
                name: "houston",
                data: &h,
                load: &lh,
                cfg: &cfg,
            },
            FleetSite {
                name: "berkeley",
                data: &b,
                load: &lb,
                cfg: &cfg,
            },
        ]);
        let plans = vec![
            vec![
                Composition::new(4, 0.0, 7_500.0),
                Composition::new(0, 12_000.0, 37_500.0),
            ],
            vec![
                Composition::BASELINE,
                Composition::new(2, 8_000.0, 15_000.0),
            ],
        ];
        let results = fleet.evaluate_plans(&plans);
        assert_eq!(results.len(), 2);

        for (plan, result) in plans.iter().zip(&results) {
            for (s, (site, comp)) in fleet.sites().iter().zip(plan).enumerate() {
                let independent =
                    BatchEvaluator::new(site.data, site.load, site.cfg).evaluate(comp);
                assert_eq!(
                    result.per_site[s].metrics, independent.metrics,
                    "site {} differs from independent batch run",
                    site.name
                );
            }
        }
    }

    #[test]
    fn simd_walk_is_bit_identical_to_scalar_walk_including_peaks() {
        let (h, b, lh, lb) = two_sites();
        // Different policies per site exercise every LanePolicy arm in one
        // fleet pass.
        let cfg_h = SimConfig {
            policy: crate::policy::DispatchPolicy::CarbonAwareGridCharge {
                ci_threshold_g_per_kwh: 300.0,
                target_soc: 0.9,
            },
            ..SimConfig::default()
        };
        let cfg_b = SimConfig {
            policy: crate::policy::DispatchPolicy::BatterySparing {
                deficit_threshold_kw: 2_000.0,
            },
            ..SimConfig::default()
        };
        let sites = vec![
            FleetSite {
                name: "houston",
                data: &h,
                load: &lh,
                cfg: &cfg_h,
            },
            FleetSite {
                name: "berkeley",
                data: &b,
                load: &lb,
                cfg: &cfg_b,
            },
        ];
        // 7 plans: one full lane group plus a 3-plan scalar remainder,
        // including battery-less plans (null kernel lanes).
        let plans: Vec<Vec<Composition>> = (0..7)
            .map(|i| {
                vec![
                    Composition::new(i % 5, (i % 3) as f64 * 8_000.0, (i % 4) as f64 * 7_500.0),
                    Composition::new(
                        (i + 2) % 5,
                        (i % 4) as f64 * 4_000.0,
                        (i % 3) as f64 * 15_000.0,
                    ),
                ]
            })
            .collect();
        let scalar = FleetEvaluator::new(sites.clone())
            .with_backend(BatchBackend::Scalar)
            .evaluate_plans_period(&plans, 2_000);
        let simd = FleetEvaluator::new(sites)
            .with_backend(BatchBackend::Simd)
            .evaluate_plans_period(&plans, 2_000);
        for (a, b) in scalar.iter().zip(&simd) {
            for (ra, rb) in a.per_site.iter().zip(&b.per_site) {
                assert_eq!(ra.metrics, rb.metrics);
            }
            assert_eq!(a.fleet, b.fleet);
        }
    }

    #[test]
    fn fleet_totals_sum_sites_and_peak_bounds_hold() {
        let (h, b, lh, lb) = two_sites();
        let cfg = SimConfig::default();
        let fleet = FleetEvaluator::new(vec![
            FleetSite {
                name: "houston",
                data: &h,
                load: &lh,
                cfg: &cfg,
            },
            FleetSite {
                name: "berkeley",
                data: &b,
                load: &lb,
                cfg: &cfg,
            },
        ]);
        let r = fleet.evaluate(&[
            Composition::new(4, 0.0, 7_500.0),
            Composition::new(0, 12_000.0, 37_500.0),
        ]);
        let sum_op: f64 = r
            .per_site
            .iter()
            .map(|x| x.metrics.operational_t_per_day)
            .sum();
        assert_eq!(r.fleet.operational_t_per_day, sum_op);
        assert_eq!(
            r.plan(),
            vec![
                Composition::new(4, 0.0, 7_500.0),
                Composition::new(0, 12_000.0, 37_500.0),
            ]
        );
        assert_eq!(r.fleet.site_import_mwh.len(), 2);
        assert!(r.fleet.grid_import_mwh > 0.0);
        // Peak concurrent import is at most the sum of per-site peaks and
        // at least each site's mean import rate.
        let peak = r
            .fleet
            .peak_concurrent_import_kw
            .expect("tracked by default");
        assert!(peak > 0.0);
        let total_import_kwh = r.fleet.grid_import_mwh * 1e3;
        let hours = h.len() as f64;
        assert!(peak >= total_import_kwh / hours);
    }

    #[test]
    fn partial_windows_match_batch_period() {
        let (h, b, lh, lb) = two_sites();
        let cfg = SimConfig::default();
        let fleet = FleetEvaluator::new(vec![
            FleetSite {
                name: "houston",
                data: &h,
                load: &lh,
                cfg: &cfg,
            },
            FleetSite {
                name: "berkeley",
                data: &b,
                load: &lb,
                cfg: &cfg,
            },
        ]);
        let plan = vec![
            Composition::new(3, 8_000.0, 22_500.0),
            Composition::new(1, 16_000.0, 7_500.0),
        ];
        for n in [1usize, 24, 1_095, 8_760] {
            let r = fleet
                .evaluate_plans_period(std::slice::from_ref(&plan), n)
                .pop()
                .unwrap();
            for (s, site) in fleet.sites().iter().enumerate() {
                let independent = BatchEvaluator::new(site.data, site.load, site.cfg)
                    .evaluate_batch_period(std::slice::from_ref(&plan[s]), n)
                    .pop()
                    .unwrap();
                assert_eq!(r.per_site[s].metrics, independent.metrics, "n={n} site {s}");
            }
        }
    }

    #[test]
    fn soc_traces_recorded_per_site_when_requested() {
        let (h, b, lh, lb) = two_sites();
        let cfg = SimConfig {
            record_soc: true,
            ..SimConfig::default()
        };
        let fleet = FleetEvaluator::new(vec![
            FleetSite {
                name: "houston",
                data: &h,
                load: &lh,
                cfg: &cfg,
            },
            FleetSite {
                name: "berkeley",
                data: &b,
                load: &lb,
                cfg: &cfg,
            },
        ]);
        let r = fleet.evaluate(&[
            Composition::new(2, 4_000.0, 15_000.0),
            Composition::new(0, 8_000.0, 7_500.0),
        ]);
        for (s, site) in fleet.sites().iter().enumerate() {
            let independent = BatchEvaluator::new(site.data, site.load, site.cfg)
                .evaluate(&r.per_site[s].composition);
            assert_eq!(r.per_site[s].soc_trace_hourly, independent.soc_trace_hourly);
            assert_eq!(r.per_site[s].soc_trace_hourly.len(), 8_760);
        }
    }

    #[test]
    fn disabling_peak_tracking_changes_nothing_else() {
        let (h, b, lh, lb) = two_sites();
        let cfg = SimConfig::default();
        let sites = vec![
            FleetSite {
                name: "houston",
                data: &h,
                load: &lh,
                cfg: &cfg,
            },
            FleetSite {
                name: "berkeley",
                data: &b,
                load: &lb,
                cfg: &cfg,
            },
        ];
        let plan = vec![
            Composition::new(4, 0.0, 7_500.0),
            Composition::new(0, 12_000.0, 37_500.0),
        ];
        let tracked = FleetEvaluator::new(sites.clone()).evaluate(&plan);
        let untracked = FleetEvaluator::new(sites)
            .with_peak_tracking(false)
            .evaluate(&plan);
        assert!(tracked.fleet.peak_concurrent_import_kw.is_some());
        assert!(untracked.fleet.peak_concurrent_import_kw.is_none());
        assert_eq!(tracked.per_site, untracked.per_site);
        assert_eq!(
            tracked.fleet.operational_t_per_day,
            untracked.fleet.operational_t_per_day
        );
        assert_eq!(
            tracked.fleet.site_import_mwh,
            untracked.fleet.site_import_mwh
        );
    }

    #[test]
    fn peak_cap_violation_is_exceedance_only() {
        let m = FleetMetrics {
            operational_t_per_day: 1.0,
            operational_t_per_year: 365.0,
            embodied_t: 0.0,
            peak_concurrent_import_kw: Some(12_000.0),
            site_import_mwh: vec![1.0],
            grid_import_mwh: 1.0,
            energy_cost_usd: 0.0,
        };
        assert_eq!(m.peak_cap_violation_kw(15_000.0), 0.0);
        assert_eq!(m.peak_cap_violation_kw(12_000.0), 0.0);
        assert_eq!(m.peak_cap_violation_kw(10_000.0), 2_000.0);
    }

    #[test]
    #[should_panic(expected = "peak tracking disabled")]
    fn peak_cap_check_panics_without_tracking() {
        let m = FleetMetrics {
            operational_t_per_day: 1.0,
            operational_t_per_year: 365.0,
            embodied_t: 0.0,
            peak_concurrent_import_kw: None,
            site_import_mwh: vec![1.0],
            grid_import_mwh: 1.0,
            energy_cost_usd: 0.0,
        };
        m.peak_cap_violation_kw(10_000.0);
    }

    #[test]
    fn empty_cohort_is_empty() {
        let (h, _, lh, _) = two_sites();
        let cfg = SimConfig::default();
        let fleet = FleetEvaluator::new(vec![FleetSite {
            name: "houston",
            data: &h,
            load: &lh,
            cfg: &cfg,
        }]);
        assert!(fleet.evaluate_plans(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "n_steps must be positive")]
    fn zero_step_window_panics() {
        let (h, _, lh, _) = two_sites();
        let cfg = SimConfig::default();
        let fleet = FleetEvaluator::new(vec![FleetSite {
            name: "houston",
            data: &h,
            load: &lh,
            cfg: &cfg,
        }]);
        fleet.evaluate_plans_period(&[vec![Composition::BASELINE]], 0);
    }

    #[test]
    #[should_panic(expected = "2 compositions for 1 sites")]
    fn plan_arity_mismatch_panics() {
        let (h, _, lh, _) = two_sites();
        let cfg = SimConfig::default();
        let fleet = FleetEvaluator::new(vec![FleetSite {
            name: "houston",
            data: &h,
            load: &lh,
            cfg: &cfg,
        }]);
        fleet.evaluate_plans(&[vec![Composition::BASELINE, Composition::BASELINE]]);
    }

    #[test]
    #[should_panic(expected = "fleet has no sites")]
    fn empty_fleet_panics() {
        FleetEvaluator::new(Vec::new());
    }
}

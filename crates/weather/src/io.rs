//! Weather-file I/O.
//!
//! Real deployments of the framework plug in measured data (the paper uses
//! NSRDB and WIND Toolkit files through SAM). This module defines a simple
//! CSV container for a [`WeatherYear`] so users can export synthesized
//! years, edit them, or import measured data without any external crates.
//!
//! Format: `#`-prefixed metadata header lines (`key=value`), one CSV
//! header row, then one row per step:
//!
//! ```text
//! # name=Houston, TX
//! # latitude_deg=29.7604
//! ...
//! ghi_w_m2,dni_w_m2,dhi_w_m2,temp_air_c,wind_speed_ms
//! 0.0,0.0,0.0,14.2,7.31
//! ```

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use mgopt_units::{SimDuration, TimeSeries};

use crate::location::Location;
use crate::WeatherYear;

/// Errors when reading a weather file.
#[derive(Debug)]
pub enum WeatherFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Format(String),
}

impl fmt::Display for WeatherFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeatherFileError::Io(e) => write!(f, "weather file I/O error: {e}"),
            WeatherFileError::Format(m) => write!(f, "weather file format error: {m}"),
        }
    }
}

impl std::error::Error for WeatherFileError {}

impl From<std::io::Error> for WeatherFileError {
    fn from(e: std::io::Error) -> Self {
        WeatherFileError::Io(e)
    }
}

/// Write a weather year as CSV.
pub fn write_csv(weather: &WeatherYear, mut w: impl Write) -> Result<(), WeatherFileError> {
    let loc = &weather.location;
    writeln!(w, "# name={}", loc.name)?;
    writeln!(w, "# latitude_deg={}", loc.latitude_deg)?;
    writeln!(w, "# longitude_deg={}", loc.longitude_deg)?;
    writeln!(w, "# elevation_m={}", loc.elevation_m)?;
    writeln!(w, "# timezone_h={}", loc.timezone_h)?;
    writeln!(w, "# step_s={}", weather.step().secs())?;
    writeln!(w, "# wind_ref_height_m={}", weather.wind_ref_height_m)?;
    writeln!(w, "# wind_shear_exponent={}", weather.wind_shear_exponent)?;
    writeln!(w, "# pressure_pa={}", weather.pressure_pa)?;
    writeln!(w, "ghi_w_m2,dni_w_m2,dhi_w_m2,temp_air_c,wind_speed_ms")?;
    for i in 0..weather.len() {
        writeln!(
            w,
            "{},{},{},{},{}",
            weather.ghi.values()[i],
            weather.dni.values()[i],
            weather.dhi.values()[i],
            weather.temp_air_c.values()[i],
            weather.wind_speed_ms.values()[i],
        )?;
    }
    Ok(())
}

/// Read a weather year from CSV (the format written by [`write_csv`]).
pub fn read_csv(r: impl Read) -> Result<WeatherYear, WeatherFileError> {
    let reader = BufReader::new(r);
    // mgopt-lint: allow(determinism) — header metadata map is keyed lookup only, never iterated
    let mut meta: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut saw_header = false;
    let mut ghi = Vec::new();
    let mut dni = Vec::new();
    let mut dhi = Vec::new();
    let mut temp = Vec::new();
    let mut wind = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some((k, v)) = rest.split_once('=') {
                meta.insert(k.trim().to_string(), v.trim().to_string());
            }
            continue;
        }
        if !saw_header {
            if !line.starts_with("ghi") {
                return Err(WeatherFileError::Format(format!(
                    "line {}: expected column header, got {line:?}",
                    lineno + 1
                )));
            }
            saw_header = true;
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(WeatherFileError::Format(format!(
                "line {}: expected 5 fields, got {}",
                lineno + 1,
                fields.len()
            )));
        }
        let parse = |s: &str, col: &str| -> Result<f64, WeatherFileError> {
            s.trim().parse::<f64>().map_err(|e| {
                WeatherFileError::Format(format!("line {}: bad {col}: {e}", lineno + 1))
            })
        };
        ghi.push(parse(fields[0], "ghi")?);
        dni.push(parse(fields[1], "dni")?);
        dhi.push(parse(fields[2], "dhi")?);
        temp.push(parse(fields[3], "temp")?);
        wind.push(parse(fields[4], "wind")?);
    }

    if ghi.is_empty() {
        return Err(WeatherFileError::Format("no data rows".into()));
    }

    let get_f64 = |key: &str, default: f64| -> Result<f64, WeatherFileError> {
        match meta.get(key) {
            Some(v) => v
                .parse::<f64>()
                .map_err(|e| WeatherFileError::Format(format!("metadata {key}: {e}"))),
            None => Ok(default),
        }
    };
    let step_s = get_f64("step_s", 3_600.0)? as i64;
    if step_s <= 0 {
        return Err(WeatherFileError::Format("step_s must be positive".into()));
    }
    let step = SimDuration::from_secs(step_s);

    let location = Location {
        name: meta
            .get("name")
            .cloned()
            .unwrap_or_else(|| "unknown".into()),
        latitude_deg: get_f64("latitude_deg", 0.0)?,
        longitude_deg: get_f64("longitude_deg", 0.0)?,
        elevation_m: get_f64("elevation_m", 0.0)?,
        timezone_h: get_f64("timezone_h", 0.0)?,
    };
    let pressure_default = crate::pressure_at_elevation_pa(location.elevation_m);

    Ok(WeatherYear {
        location,
        ghi: TimeSeries::new(step, ghi),
        dni: TimeSeries::new(step, dni),
        dhi: TimeSeries::new(step, dhi),
        temp_air_c: TimeSeries::new(step, temp),
        wind_speed_ms: TimeSeries::new(step, wind),
        wind_ref_height_m: get_f64("wind_ref_height_m", 100.0)?,
        wind_shear_exponent: get_f64("wind_shear_exponent", 0.14)?,
        pressure_pa: get_f64("pressure_pa", pressure_default)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Climate, WeatherGenerator};

    fn sample_year() -> WeatherYear {
        WeatherGenerator::new(Climate::houston(), 42).generate(SimDuration::from_hours(1.0))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_year();
        let mut buf = Vec::new();
        write_csv(&original, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.location, original.location);
        assert_eq!(back.step(), original.step());
        assert_eq!(back.len(), original.len());
        assert_eq!(back.wind_ref_height_m, original.wind_ref_height_m);
        // f64 -> decimal -> f64 round trip is exact with Rust's float
        // formatting (shortest round-trippable representation).
        assert_eq!(back.ghi, original.ghi);
        assert_eq!(back.wind_speed_ms, original.wind_speed_ms);
        assert_eq!(back.pressure_pa, original.pressure_pa);
    }

    #[test]
    fn hand_written_file_parses_with_defaults() {
        let text = "\
# name=Test Site
# latitude_deg=40.0
ghi_w_m2,dni_w_m2,dhi_w_m2,temp_air_c,wind_speed_ms
100.0,50.0,60.0,15.0,5.0
200.0,150.0,80.0,16.0,6.0
";
        let w = read_csv(text.as_bytes()).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.step().secs(), 3_600, "default step");
        assert_eq!(w.wind_ref_height_m, 100.0, "default ref height");
        assert_eq!(w.location.name, "Test Site");
        assert!(w.pressure_pa > 100_000.0, "barometric default");
    }

    #[test]
    fn missing_header_rejected() {
        let text = "100.0,50.0,60.0,15.0,5.0\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, WeatherFileError::Format(_)));
        assert!(err.to_string().contains("column header"));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = "ghi_w_m2,dni_w_m2,dhi_w_m2,temp_air_c,wind_speed_ms\n1,2,3\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 5 fields"));
    }

    #[test]
    fn non_numeric_value_rejected() {
        let text = "ghi_w_m2,dni_w_m2,dhi_w_m2,temp_air_c,wind_speed_ms\n1,2,3,four,5\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad temp"));
    }

    #[test]
    fn empty_file_rejected() {
        let err = read_csv("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("no data rows"));
    }

    #[test]
    fn imported_weather_feeds_generation_models() {
        // The round-tripped year must be usable downstream.
        let original = sample_year();
        let mut buf = Vec::new();
        write_csv(&original, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert!(!back.is_empty());
        assert!(back.ghi.max() > 300.0);
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-core
//!
//! The microgrid-opt framework — the paper's primary contribution. It ties
//! the co-simulation stack (weather → SAM models → microgrid bus → carbon
//! accounting) to the black-box optimizer and packages the paper's
//! experiments behind a configuration-driven API (the Rust equivalent of
//! the Hydra + Optuna-sweeper setup the authors describe).
//!
//! * [`scenario`] — serializable scenario configs and their preparation;
//! * [`cache`] — the shared prepared-scenario cache (Arc-handout, LRU,
//!   hit/miss telemetry) behind the optimization daemon;
//! * [`fleet`] — multi-site fleet scenarios and the interleaved fleet
//!   sweep (geo-distributed studies, fleet-level carbon accounts);
//! * [`wire`] — the daemon's versioned request/response wire format with
//!   strict-reject parsing and structured error frames;
//! * [`objectives`] — objective sets over simulation results (§3.3/§4.3);
//! * [`problem`] — the composition space as an optimizer problem;
//! * [`sweep`] — the rayon-parallel exhaustive sweep (ground truth);
//! * [`experiments`] — one driver per paper table/figure (Fig. 2, Tables
//!   1/2, Fig. 3, Fig. 4, §4.4 search performance, §4.3 extensions);
//! * [`report`] — plain-text renderings of the paper's tables and figures.

pub mod cache;
pub mod experiments;
pub mod fleet;
pub mod objectives;
pub mod problem;
pub mod report;
pub mod scenario;
pub mod sweep;
pub mod wire;

pub use cache::{scenario_cache_key, scenario_key_hash, PreparedCache};
pub use fleet::{
    fleet_plans, fleet_sweep, FleetAssignment, FleetMember, FleetScenario, PrepStats, PreparedFleet,
};
pub use objectives::{ObjectiveKind, ObjectiveSet};
pub use problem::{CompositionProblem, FleetProblem};
pub use scenario::{PreparedScenario, ScenarioConfig, SitePreset, WorkloadConfig};
pub use sweep::{sweep_all, sweep_all_scalar, sweep_all_with_backend};

//! Ambient air temperature synthesis.
//!
//! Temperature enters the system through the PVWatts cell-temperature model
//! (hot modules are less efficient) and through air density for wind power.
//! The model is a seasonal baseline (linear interpolation between monthly
//! means) plus a diurnal cosine (minimum near sunrise, maximum mid
//! afternoon) plus an AR(1) day-to-day anomaly.

use mgopt_units::time::{month_of_day, MONTH_LENGTHS, MONTH_STARTS};
use mgopt_units::SimTime;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::climate::TemperatureClimate;
use crate::cloud::sample_standard_normal;
use crate::math::Ar1;

/// Deterministic seasonal + diurnal temperature baseline, °C.
pub fn baseline_temp_c(climate: &TemperatureClimate, t: SimTime) -> f64 {
    let cal = t.calendar();
    let seasonal = seasonal_mean_c(climate, cal.day_of_year);
    // Diurnal cycle: minimum at ~05:00, maximum at ~15:00.
    let phase = (cal.hour_of_day() - 15.0) / 24.0 * std::f64::consts::TAU;
    seasonal + 0.5 * climate.diurnal_swing_c * phase.cos()
}

/// Monthly-mean curve interpolated to a day of year (piecewise linear
/// between month midpoints, periodic across the year boundary).
pub fn seasonal_mean_c(climate: &TemperatureClimate, day_of_year: u32) -> f64 {
    let month = month_of_day(day_of_year) as usize;
    let mid = MONTH_STARTS[month] as f64 + MONTH_LENGTHS[month] as f64 / 2.0;
    let d = day_of_year as f64 + 0.5;
    let (m0, m1, w) = if d < mid {
        let prev = (month + 11) % 12;
        let prev_mid = MONTH_STARTS[prev] as f64 + MONTH_LENGTHS[prev] as f64 / 2.0
            - if month == 0 { 365.0 } else { 0.0 };
        (prev, month, (d - prev_mid) / (mid - prev_mid))
    } else {
        let next = (month + 1) % 12;
        let next_mid = MONTH_STARTS[next] as f64
            + MONTH_LENGTHS[next] as f64 / 2.0
            + if month == 11 { 365.0 } else { 0.0 };
        (month, next, (d - mid) / (next_mid - mid))
    };
    climate.monthly_mean_c[m0] * (1.0 - w) + climate.monthly_mean_c[m1] * w
}

/// Stochastic temperature generator (baseline + AR(1) anomaly).
#[derive(Debug)]
pub struct TemperatureGenerator {
    climate: TemperatureClimate,
    rng: ChaCha12Rng,
    anomaly: Ar1,
}

impl TemperatureGenerator {
    /// Create a generator; anomalies decorrelate over ~2 days of hourly steps.
    pub fn new(climate: TemperatureClimate, seed: u64) -> Self {
        Self {
            climate,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x7e4b_7e4b),
            anomaly: Ar1::new(Ar1::rho_for_decorrelation_steps(48.0)),
        }
    }

    /// Temperature at `t`, advancing the anomaly process one step.
    ///
    /// Call once per simulation step in time order.
    pub fn step(&mut self, t: SimTime) -> f64 {
        let eps = sample_standard_normal(&mut self.rng);
        let anomaly = self.anomaly.step(eps) * self.climate.anomaly_std_c;
        baseline_temp_c(&self.climate, t) + anomaly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate::Climate;
    use mgopt_units::{SimDuration, SimTime, SECONDS_PER_DAY};

    #[test]
    fn seasonal_mean_hits_month_midpoints() {
        let c = Climate::houston().temperature;
        // Mid-January (day 15) should be ~the January mean.
        assert!((seasonal_mean_c(&c, 15) - c.monthly_mean_c[0]).abs() < 0.3);
        // Mid-July (day 196) ~ July mean.
        assert!((seasonal_mean_c(&c, 196) - c.monthly_mean_c[6]).abs() < 0.3);
    }

    #[test]
    fn seasonal_mean_continuous_across_year_boundary() {
        let c = Climate::berkeley().temperature;
        let dec31 = seasonal_mean_c(&c, 364);
        let jan1 = seasonal_mean_c(&c, 0);
        assert!(
            (dec31 - jan1).abs() < 0.5,
            "discontinuity {dec31} vs {jan1}"
        );
    }

    #[test]
    fn diurnal_max_mid_afternoon() {
        let c = Climate::houston().temperature;
        let day = 200i64;
        let at =
            |h: i64| baseline_temp_c(&c, SimTime::from_secs(day * SECONDS_PER_DAY + h * 3_600));
        assert!(at(15) > at(5) + 0.8 * c.diurnal_swing_c);
        assert!(at(15) > at(0));
    }

    #[test]
    fn generator_tracks_baseline() {
        let c = Climate::berkeley().temperature;
        let mut g = TemperatureGenerator::new(c.clone(), 5);
        let mut t = SimTime::START;
        let mut err_sum = 0.0;
        let mut n = 0;
        while t.secs() < 30 * SECONDS_PER_DAY {
            let temp = g.step(t);
            err_sum += temp - baseline_temp_c(&c, t);
            n += 1;
            t += SimDuration::from_hours(1.0);
        }
        let bias: f64 = err_sum / n as f64;
        assert!(bias.abs() < 1.5, "anomaly bias {bias}");
    }

    #[test]
    fn houston_hotter_than_berkeley_in_summer() {
        let h = Climate::houston().temperature;
        let b = Climate::berkeley().temperature;
        assert!(seasonal_mean_c(&h, 200) > seasonal_mean_c(&b, 200) + 8.0);
    }
}

//! Stochastic wind-speed synthesis.
//!
//! A translated-Gaussian process: an AR(1) standard-normal series is mapped
//! through the normal CDF onto the per-month Weibull quantile function, then
//! modulated by a diurnal cycle. This preserves (a) the target Weibull
//! marginal distribution — which fixes the turbine capacity factor — and
//! (b) realistic multi-hour lulls and storms via the AR autocorrelation,
//! which is what makes batteries matter.

use mgopt_units::SimTime;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::climate::WindClimate;
use crate::cloud::sample_standard_normal;
use crate::math::{norm_cdf, weibull_quantile, Ar1};

/// Stochastic wind-speed generator at the climatology's reference height.
#[derive(Debug)]
pub struct WindGenerator {
    climate: WindClimate,
    rng: ChaCha12Rng,
    process: Ar1,
    steps_per_hour: f64,
}

impl WindGenerator {
    /// Create a generator producing samples every `step_s` seconds.
    pub fn new(climate: WindClimate, seed: u64, step_s: i64) -> Self {
        assert!(step_s > 0);
        let steps_per_hour = 3_600.0 / step_s as f64;
        let decorrelation_steps = climate.decorrelation_h * steps_per_hour;
        Self {
            climate,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x3141_5926),
            process: Ar1::new(Ar1::rho_for_decorrelation_steps(decorrelation_steps)),
            steps_per_hour,
        }
    }

    /// Wind speed (m/s) at the reference height at time `t`.
    ///
    /// Call once per simulation step in time order.
    pub fn step(&mut self, t: SimTime) -> f64 {
        let eps = sample_standard_normal(&mut self.rng);
        let g = self.process.step(eps);
        let u = norm_cdf(g);

        let cal = t.calendar();
        let scale =
            self.climate.weibull_scale_ms * self.climate.monthly_scale_factor[cal.month as usize];
        let speed = weibull_quantile(u, scale, self.climate.weibull_shape);

        // Diurnal modulation preserves the daily mean to first order:
        // multiply by 1 + A cos(phase), whose mean over a day is 1.
        let phase =
            (cal.hour_of_day() - self.climate.diurnal_peak_hour) / 24.0 * std::f64::consts::TAU;
        let diurnal = 1.0 + self.climate.diurnal_amplitude * phase.cos();
        (speed * diurnal).max(0.0)
    }

    /// Samples per hour implied by the construction step.
    pub fn steps_per_hour(&self) -> f64 {
        self.steps_per_hour
    }
}

/// Extrapolate a wind speed between heights with the power law
/// `v2 = v1 (h2 / h1)^alpha`.
pub fn power_law_shear(v_ref: f64, ref_height_m: f64, target_height_m: f64, alpha: f64) -> f64 {
    assert!(ref_height_m > 0.0 && target_height_m > 0.0);
    v_ref * (target_height_m / ref_height_m).powf(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate::Climate;
    use crate::math::weibull_mean;
    use mgopt_units::{stats, SimDuration, SimTime};

    fn generate_year(climate: &WindClimate, seed: u64) -> Vec<f64> {
        let step = SimDuration::from_hours(1.0);
        let mut g = WindGenerator::new(climate.clone(), seed, step.secs());
        let mut t = SimTime::START;
        let mut out = Vec::with_capacity(8_760);
        for _ in 0..8_760 {
            out.push(g.step(t));
            t += step;
        }
        out
    }

    #[test]
    fn annual_mean_tracks_weibull_mean() {
        let c = Climate::houston().wind;
        let speeds = generate_year(&c, 1);
        let mean_factor: f64 = c.monthly_scale_factor.iter().sum::<f64>() / 12.0;
        let expected = weibull_mean(c.weibull_scale_ms * mean_factor, c.weibull_shape);
        let actual = stats::mean(&speeds);
        assert!(
            (actual - expected).abs() / expected < 0.08,
            "mean {actual} vs expected {expected}"
        );
    }

    #[test]
    fn speeds_nonnegative_and_bounded() {
        for seed in 0..3 {
            let speeds = generate_year(&Climate::berkeley().wind, seed);
            for &v in &speeds {
                assert!(v >= 0.0);
                assert!(v < 45.0, "implausible speed {v}");
            }
        }
    }

    #[test]
    fn autocorrelated_not_white_noise() {
        let speeds = generate_year(&Climate::houston().wind, 2);
        let r1 = stats::autocorrelation(&speeds, 1);
        assert!(r1 > 0.7, "lag-1 autocorrelation {r1}");
        let r24 = stats::autocorrelation(&speeds, 24);
        assert!(r24 < r1);
    }

    #[test]
    fn houston_windier_than_berkeley() {
        let h = stats::mean(&generate_year(&Climate::houston().wind, 3));
        let b = stats::mean(&generate_year(&Climate::berkeley().wind, 3));
        assert!(h > b + 1.0, "houston {h} vs berkeley {b}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = Climate::houston().wind;
        assert_eq!(generate_year(&c, 9), generate_year(&c, 9));
        assert_ne!(generate_year(&c, 9), generate_year(&c, 10));
    }

    #[test]
    fn lulls_exist_for_storage_to_cover() {
        // Multi-hour low-wind periods must occur (they drive the battery
        // and grid-import behaviour in the paper's Houston scenario).
        let speeds = generate_year(&Climate::houston().wind, 4);
        let mut longest_lull = 0usize;
        let mut run = 0usize;
        for &v in &speeds {
            if v < 3.5 {
                run += 1;
                longest_lull = longest_lull.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest_lull >= 6, "longest lull {longest_lull} h");
    }

    #[test]
    fn shear_extrapolation() {
        let v100 = power_law_shear(8.0, 100.0, 100.0, 0.14);
        assert_eq!(v100, 8.0);
        let v140 = power_law_shear(8.0, 100.0, 140.0, 0.14);
        assert!(v140 > 8.0 && v140 < 9.0);
        let v10 = power_law_shear(8.0, 100.0, 10.0, 0.14);
        assert!(v10 < 6.0);
    }

    #[test]
    fn seasonality_visible() {
        let c = Climate::houston().wind;
        let speeds = generate_year(&c, 5);
        let spring = stats::mean(&speeds[59 * 24..151 * 24]); // Mar-May
        let late_summer = stats::mean(&speeds[212 * 24..243 * 24]); // Aug
        assert!(
            spring > late_summer,
            "spring {spring} <= august {late_summer}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn shear_monotone_in_height(v in 0.0f64..30.0, h in 10.0f64..200.0) {
            let alpha = 0.14;
            let up = power_law_shear(v, 100.0, h + 10.0, alpha);
            let lo = power_law_shear(v, 100.0, h, alpha);
            prop_assert!(up >= lo);
        }
    }
}

//! The simulation environment: several microgrids advancing on one clock.
//!
//! Vessim's `Environment` owns a set of microgrids and steps them together
//! — the abstraction behind geo-distributed data-center studies (multiple
//! sites, one fleet-level carbon account). Records are delivered to a
//! per-step callback tagged with the microgrid index, plus fleet-level
//! aggregates.

use mgopt_units::{Power, SimDuration, SimTime};

use crate::microgrid::{Microgrid, SimResult};
use crate::record::StepRecord;

/// A named microgrid inside an environment.
pub struct Member {
    /// Display name ("houston-dc-1").
    pub name: String,
    /// The microgrid.
    pub microgrid: Microgrid,
}

/// Fleet-level totals of one synchronized step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRecord {
    /// Step start.
    pub t: SimTime,
    /// Step length.
    pub dt: SimDuration,
    /// Sum of members' grid imports, kW.
    pub total_import: Power,
    /// Sum of members' grid exports, kW.
    pub total_export: Power,
    /// Sum of members' production, kW.
    pub total_production: Power,
    /// Sum of members' consumption (≤ 0), kW.
    pub total_consumption: Power,
}

/// A multi-microgrid co-simulation environment.
#[derive(Default)]
pub struct Environment {
    members: Vec<Member>,
}

impl Environment {
    /// Create an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a microgrid; returns its index.
    pub fn add_microgrid(&mut self, name: impl Into<String>, microgrid: Microgrid) -> usize {
        self.members.push(Member {
            name: name.into(),
            microgrid,
        });
        self.members.len() - 1
    }

    /// Number of member microgrids.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no microgrids have been added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member names in index order.
    pub fn names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name.as_str()).collect()
    }

    /// Run all members on a shared fixed-step clock.
    ///
    /// `on_step(member_index, record)` fires for every member every step
    /// (members in index order), then `on_fleet(fleet_record)` once per
    /// step. Returns one [`SimResult`] per member.
    ///
    /// # Panics
    /// Panics when the environment is empty, `dt` is non-positive, or `dt`
    /// does not divide `duration`.
    pub fn run(
        &mut self,
        start: SimTime,
        duration: SimDuration,
        dt: SimDuration,
        mut on_step: impl FnMut(usize, &StepRecord),
        mut on_fleet: impl FnMut(&FleetRecord),
    ) -> Vec<SimResult> {
        assert!(!self.members.is_empty(), "environment has no microgrids");
        assert!(dt.secs() > 0, "dt must be positive");
        assert_eq!(duration.secs() % dt.secs(), 0, "dt must divide duration");

        let steps = (duration.secs() / dt.secs()) as usize;
        let mut t = start;
        for _ in 0..steps {
            let mut fleet = FleetRecord {
                t,
                dt,
                total_import: Power::ZERO,
                total_export: Power::ZERO,
                total_production: Power::ZERO,
                total_consumption: Power::ZERO,
            };
            for (i, member) in self.members.iter_mut().enumerate() {
                let rec = member.microgrid.step(t, dt);
                fleet.total_import += rec.grid_import();
                fleet.total_export += rec.grid_export();
                fleet.total_production += rec.p_production;
                fleet.total_consumption += rec.p_consumption;
                on_step(i, &rec);
            }
            on_fleet(&fleet);
            t += dt;
        }

        self.members
            .iter()
            .map(|m| SimResult {
                steps,
                final_soc: m.microgrid.storage().soc(),
                storage_charged_kwh: m.microgrid.storage().charged_total().kwh(),
                storage_discharged_kwh: m.microgrid.storage().discharged_total().kwh(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::SignalActor;
    use crate::dispatch::SelfConsumption;
    use crate::signal::ConstantSignal;
    use mgopt_storage::NullStorage;

    fn grid(load_kw: f64, gen_kw: f64) -> Microgrid {
        Microgrid::new(
            vec![
                Box::new(SignalActor::producer("gen", ConstantSignal::new(gen_kw))),
                Box::new(SignalActor::consumer("load", ConstantSignal::new(load_kw))),
            ],
            Box::new(NullStorage::new()),
            Box::new(SelfConsumption::default()),
        )
    }

    const DT: SimDuration = SimDuration(3_600);

    #[test]
    fn two_sites_step_in_lockstep() {
        let mut env = Environment::new();
        env.add_microgrid("houston", grid(100.0, 30.0)); // imports 70
        env.add_microgrid("berkeley", grid(50.0, 90.0)); // exports 40
        assert_eq!(env.len(), 2);
        assert_eq!(env.names(), vec!["houston", "berkeley"]);

        let mut per_member = vec![0usize; 2];
        let mut fleet_imports = Vec::new();
        let results = env.run(
            SimTime::START,
            SimDuration::from_hours(6.0),
            DT,
            |i, rec| {
                per_member[i] += 1;
                assert_eq!(rec.balance_residual().kw(), 0.0);
            },
            |fleet| fleet_imports.push(fleet.total_import.kw()),
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].steps, 6);
        assert_eq!(per_member, vec![6, 6]);
        // Fleet import: only houston imports (70); berkeley's export does
        // not offset it at the fleet level (separate sites).
        assert_eq!(fleet_imports, vec![70.0; 6]);
    }

    #[test]
    fn fleet_totals_sum_members() {
        let mut env = Environment::new();
        env.add_microgrid("a", grid(100.0, 0.0));
        env.add_microgrid("b", grid(200.0, 0.0));
        let mut total = 0.0;
        env.run(
            SimTime::START,
            SimDuration::from_hours(1.0),
            DT,
            |_, _| {},
            |fleet| {
                total = fleet.total_import.kw();
                assert_eq!(fleet.total_consumption.kw(), -300.0);
                assert_eq!(fleet.total_production.kw(), 0.0);
            },
        );
        assert_eq!(total, 300.0);
    }

    #[test]
    #[should_panic(expected = "no microgrids")]
    fn empty_environment_panics() {
        Environment::new().run(
            SimTime::START,
            SimDuration::from_hours(1.0),
            DT,
            |_, _| {},
            |_| {},
        );
    }

    #[test]
    fn empty_checks() {
        let env = Environment::new();
        assert!(env.is_empty());
        assert_eq!(env.len(), 0);
    }
}

//! The bench-regression guard: re-read the freshly written
//! `BENCH_sweep.json` / `BENCH_fleet.json` / `BENCH_fleet_search.json` /
//! `BENCH_server.json` and fail (exit 1) when a deliverable is missing or malformed, an
//! engine-agreement bound is broken, or a recorded speedup degrades
//! beyond the generous tolerance committed in `BENCH_baseline.json`.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin bench_guard
//! ```
//!
//! Runs *after* the bench bins in CI, so a refactor that silently turns a
//! batched path into a scalar one (or breaks an artifact schema that
//! downstream tooling reads) fails the job instead of shipping. Every
//! check is reported before exiting, not just the first failure.

use std::path::{Path, PathBuf};

use mgopt_bench::{TelemetrySection, ThreadScaling};
use serde::Deserialize;

/// Committed floors: a fresh speedup must stay above
/// `baseline_speedup * (1 - tolerance)`.
#[derive(Debug, Deserialize)]
struct Baseline {
    tolerance: f64,
    sweep: BaselineEntry,
    fleet: BaselineEntry,
    fleet_search: BaselineEntry,
    /// Floor for the sweep's SIMD-vs-scalar-walk speedup — a refactor
    /// that quietly de-vectorizes the lane kernel fails here even while
    /// the batched-vs-scalar-engine speedup still looks healthy.
    simd: BaselineEntry,
    /// Floor for the daemon's multiplexed-vs-sequential speedup — near
    /// 1.0 on a single-core runner, so this guards the concurrency layer
    /// against growing real overhead rather than promising a gain.
    server: BaselineEntry,
    /// Floor for the multi-connection phase's throughput relative to the
    /// sequential baseline — guards the acceptor pool, the process-wide
    /// admission queue, and the cancellation path against growing real
    /// overhead.
    server_multi: BaselineEntry,
}

#[derive(Debug, Deserialize)]
struct BaselineEntry {
    baseline_speedup: f64,
}

/// The fields of `BENCH_sweep.json` the guard checks (extra fields are
/// ignored, missing ones fail the parse — that *is* the deliverable
/// check).
#[derive(Debug, Deserialize)]
struct SweepArtifact {
    compositions: usize,
    steps_per_year: usize,
    scalar_ms_median: f64,
    batched_ms_median: f64,
    speedup: f64,
    max_rel_error: f64,
    threads: usize,
    simd: bool,
    simd_ms_median: f64,
    scalar_batch_ms_median: f64,
    simd_speedup: f64,
    simd_max_rel_error: f64,
    scaling: Vec<ThreadScaling>,
}

#[derive(Debug, Deserialize)]
struct FleetArtifact {
    sites: Vec<String>,
    plans: usize,
    interleaved_ms_min: f64,
    interleaved_with_peak_ms_min: f64,
    sequential_ms_min: f64,
    speedup: f64,
    speedup_with_peak: f64,
    max_rel_error: f64,
    peak_concurrent_import_mw: f64,
    threads: usize,
    simd: bool,
    simd_ms_min: f64,
    scalar_walk_ms_min: f64,
    simd_speedup: f64,
    simd_max_rel_error: f64,
    scaling: Vec<ThreadScaling>,
}

#[derive(Debug, Deserialize)]
struct FleetSearchArtifact {
    sites: Vec<String>,
    space_per_site: Vec<usize>,
    plan_space: usize,
    max_trials: usize,
    unique_evaluations: usize,
    front_size: usize,
    batched_ms_min: f64,
    scalar_ms_min: f64,
    speedup: f64,
    agreement: bool,
    threads: usize,
    simd: bool,
    simd_ms_min: f64,
    scalar_walk_ms_min: f64,
    simd_speedup: f64,
    simd_agreement: bool,
    scaling: Vec<ThreadScaling>,
    /// Optional instrumentation section: validated when present, tolerated
    /// when absent (pre-telemetry artifacts — and the committed baseline —
    /// keep loading unchanged).
    #[serde(default)]
    telemetry: Option<TelemetrySection>,
}

/// The fields of `BENCH_server.json` the guard checks (see `server_bench`).
#[derive(Debug, Deserialize)]
struct ServerArtifact {
    studies: usize,
    sites: usize,
    plan_space: u64,
    max_concurrent: usize,
    in_flight_peak: usize,
    concurrent_ms_min: f64,
    sequential_ms_min: f64,
    studies_per_sec: f64,
    speedup: f64,
    prep_cache_hits: u64,
    prep_cache_misses: u64,
    prep_cache_hit_rate: f64,
    agreement: bool,
    multi_conn: MultiConnArtifact,
}

/// The multi-connection section of `BENCH_server.json`: one shared
/// daemon, many concurrent sockets, a mid-flight cancellation.
#[derive(Debug, Deserialize)]
struct MultiConnArtifact {
    connections: usize,
    studies: usize,
    max_concurrent: usize,
    in_flight_peak: usize,
    queue_depth_peak: usize,
    ms_min: f64,
    studies_per_sec: f64,
    speedup: f64,
    cancelled_done_frames: usize,
    agreement: bool,
}

/// Per-site composition count the current mode must have produced, if it
/// is pinned (`MGOPT_DENSE` grids vary, so they skip the count check).
fn expected_compositions() -> Option<usize> {
    if std::env::var("MGOPT_DENSE").is_ok() {
        return None;
    }
    Some(if mgopt_bench::fast_mode() { 27 } else { 1_089 })
}

/// The `simd` flag every artifact must have recorded: the same
/// `MGOPT_SIMD` resolution the engines use, re-derived here. An artifact
/// reporting `simd: false` under a default environment means the bench
/// quietly fell back to the scalar walk.
fn expected_simd_flag() -> bool {
    std::env::var("MGOPT_SIMD")
        .map(|v| v != "0")
        .unwrap_or(true)
}

/// Shared sanity checks for a bin's `scaling` section.
fn check_scaling(kind: &str, scaling: &[ThreadScaling], check: &mut impl FnMut(bool, String)) {
    check(
        !scaling.is_empty(),
        format!("{kind}: scaling section is empty"),
    );
    for p in scaling {
        check(
            p.threads_requested >= 1
                && p.threads_effective >= 1
                && p.threads_effective <= p.threads_requested,
            format!(
                "{kind}: scaling entry requested {} / effective {}",
                p.threads_requested, p.threads_effective
            ),
        );
        check(
            p.ms_min > 0.0 && p.ms_min.is_finite(),
            format!(
                "{kind}: non-positive scaling timing at {} threads",
                p.threads_requested
            ),
        );
    }
}

fn read<T: Deserialize>(path: &Path, errors: &mut Vec<String>) -> Option<T> {
    let name = path.file_name().unwrap_or_default().to_string_lossy();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errors.push(format!("{name}: cannot read ({e})"));
            return None;
        }
    };
    match serde_json::from_str(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            errors.push(format!("{name}: deliverables mismatch ({e:?})"));
            None
        }
    }
}

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut errors: Vec<String> = Vec::new();

    let baseline: Baseline = match read(&root.join("BENCH_baseline.json"), &mut errors) {
        Some(b) => b,
        None => {
            eprintln!("bench-guard: FAIL {}", errors.join("; "));
            std::process::exit(1);
        }
    };
    assert!(
        (0.0..1.0).contains(&baseline.tolerance),
        "baseline tolerance must lie in [0, 1)"
    );
    let floor = |entry: &BaselineEntry| entry.baseline_speedup * (1.0 - baseline.tolerance);
    let expected = expected_compositions();

    let sweep: Option<SweepArtifact> = read(&root.join("BENCH_sweep.json"), &mut errors);
    let fleet: Option<FleetArtifact> = read(&root.join("BENCH_fleet.json"), &mut errors);
    let search: Option<FleetSearchArtifact> =
        read(&root.join("BENCH_fleet_search.json"), &mut errors);
    let server: Option<ServerArtifact> = read(&root.join("BENCH_server.json"), &mut errors);

    let mut checks = 0usize;
    let mut check = |ok: bool, msg: String| {
        checks += 1;
        if !ok {
            errors.push(msg);
        }
    };

    if let Some(a) = sweep {
        let f = floor(&baseline.sweep);
        check(
            a.speedup >= f,
            format!("sweep: speedup {:.2} below floor {f:.2}", a.speedup),
        );
        check(
            a.max_rel_error <= 1e-9,
            format!("sweep: engines disagree at {:e}", a.max_rel_error),
        );
        if let Some(n) = expected {
            check(
                a.compositions == n,
                format!("sweep: {} compositions, expected {n}", a.compositions),
            );
        }
        check(
            a.scalar_ms_median > 0.0 && a.batched_ms_median > 0.0,
            "sweep: non-positive timing".into(),
        );
        check(
            a.steps_per_year > 0 && a.threads >= 1,
            "sweep: malformed steps/threads".into(),
        );
        let simd_floor = floor(&baseline.simd);
        check(
            a.simd_speedup >= simd_floor,
            format!(
                "sweep: SIMD speedup {:.2} below floor {simd_floor:.2}",
                a.simd_speedup
            ),
        );
        check(
            a.simd_max_rel_error == 0.0,
            format!(
                "sweep: SIMD walk not bit-identical ({:e})",
                a.simd_max_rel_error
            ),
        );
        check(
            a.simd == expected_simd_flag(),
            format!(
                "sweep: recorded simd={} but MGOPT_SIMD resolves to {}",
                a.simd,
                expected_simd_flag()
            ),
        );
        check(
            a.simd_ms_median > 0.0 && a.scalar_batch_ms_median > 0.0,
            "sweep: non-positive SIMD A/B timing".into(),
        );
        check_scaling("sweep", &a.scaling, &mut check);
    }

    if let Some(a) = fleet {
        let f = floor(&baseline.fleet);
        check(
            a.speedup >= f,
            format!("fleet: speedup {:.2} below floor {f:.2}", a.speedup),
        );
        check(
            a.speedup_with_peak >= f,
            format!(
                "fleet: peak-tracking speedup {:.2} below floor {f:.2}",
                a.speedup_with_peak
            ),
        );
        check(
            a.max_rel_error <= 1e-9,
            format!("fleet: engines disagree at {:e}", a.max_rel_error),
        );
        if let Some(n) = expected {
            check(
                a.plans == n,
                format!("fleet: {} plans, expected {n}", a.plans),
            );
        }
        check(
            a.peak_concurrent_import_mw > 0.0,
            "fleet: concurrent peak not recorded".into(),
        );
        check(
            a.sites.len() == 2
                && a.interleaved_ms_min > 0.0
                && a.interleaved_with_peak_ms_min > 0.0
                && a.sequential_ms_min > 0.0
                && a.threads >= 1,
            "fleet: malformed sites/timings".into(),
        );
        check(
            a.simd_max_rel_error == 0.0,
            format!(
                "fleet: SIMD walk not bit-identical ({:e})",
                a.simd_max_rel_error
            ),
        );
        check(
            a.simd == expected_simd_flag(),
            format!(
                "fleet: recorded simd={} but MGOPT_SIMD resolves to {}",
                a.simd,
                expected_simd_flag()
            ),
        );
        check(
            a.simd_speedup > 0.0 && a.simd_ms_min > 0.0 && a.scalar_walk_ms_min > 0.0,
            "fleet: malformed SIMD A/B timings".into(),
        );
        check_scaling("fleet", &a.scaling, &mut check);
    }

    if let Some(a) = search {
        let f = floor(&baseline.fleet_search);
        check(
            a.speedup >= f,
            format!("fleet_search: speedup {:.2} below floor {f:.2}", a.speedup),
        );
        check(
            a.agreement,
            "fleet_search: batched and scalar searches diverged".into(),
        );
        if let Some(n) = expected {
            check(
                a.space_per_site.iter().all(|&d| d == n) && a.plan_space == n * n,
                format!(
                    "fleet_search: space {:?} / {} plans, expected {n} per site",
                    a.space_per_site, a.plan_space
                ),
            );
        }
        check(
            a.unique_evaluations >= 1 && a.unique_evaluations <= a.max_trials,
            format!(
                "fleet_search: {} unique evaluations for {} trials",
                a.unique_evaluations, a.max_trials
            ),
        );
        check(
            a.sites.len() == 2
                && a.front_size >= 1
                && a.batched_ms_min > 0.0
                && a.scalar_ms_min > 0.0
                && a.threads >= 1,
            "fleet_search: malformed sites/front/timings".into(),
        );
        check(
            a.simd_agreement,
            "fleet_search: SIMD-backed and scalar-walk searches diverged".into(),
        );
        check(
            a.simd == expected_simd_flag(),
            format!(
                "fleet_search: recorded simd={} but MGOPT_SIMD resolves to {}",
                a.simd,
                expected_simd_flag()
            ),
        );
        check(
            a.simd_speedup > 0.0 && a.simd_ms_min > 0.0 && a.scalar_walk_ms_min > 0.0,
            "fleet_search: malformed SIMD A/B timings".into(),
        );
        check_scaling("fleet_search", &a.scaling, &mut check);
        // Telemetry section: sanity-only (no overhead gating — enabled-run
        // timing is too noisy for a CI floor). An instrumented fleet
        // search must have walked the fleet kernel and seen cache traffic.
        if let Some(t) = a.telemetry {
            check(
                t.stages
                    .iter()
                    .any(|s| s.name == "fleet.kernel" && s.calls > 0),
                "fleet_search: telemetry section has no fleet.kernel spans".into(),
            );
            check(
                t.stages.iter().all(|s| s.total_ms >= 0.0 && s.calls > 0),
                "fleet_search: malformed telemetry stage row".into(),
            );
            check(
                t.evals_per_sec > 0.0,
                "fleet_search: telemetry evals_per_sec not positive".into(),
            );
            check(
                (0.0..=1.0).contains(&t.cache_hit_rate),
                format!(
                    "fleet_search: cache hit rate {} outside [0, 1]",
                    t.cache_hit_rate
                ),
            );
        }
    }

    if let Some(a) = server {
        let f = floor(&baseline.server);
        check(
            a.speedup >= f,
            format!("server: speedup {:.2} below floor {f:.2}", a.speedup),
        );
        check(
            a.agreement,
            "server: daemon fronts diverged from standalone runs".into(),
        );
        check(
            a.max_concurrent >= 4 && a.in_flight_peak >= a.max_concurrent,
            format!(
                "server: in-flight peak {} never reached max_concurrent {} — \
                 the throughput number measured a sequential run",
                a.in_flight_peak, a.max_concurrent
            ),
        );
        check(
            a.studies >= a.max_concurrent && a.sites == 2 && a.plan_space >= 1,
            "server: malformed workload shape".into(),
        );
        check(
            a.studies_per_sec > 0.0
                && a.concurrent_ms_min > 0.0
                && a.sequential_ms_min > 0.0
                && a.concurrent_ms_min.is_finite()
                && a.sequential_ms_min.is_finite(),
            "server: non-positive timing".into(),
        );
        check(
            a.prep_cache_misses >= 1 && a.prep_cache_hits > a.prep_cache_misses,
            format!(
                "server: cache traffic {}h/{}m — one shared fleet across {} \
                 studies must hit far more than it misses",
                a.prep_cache_hits, a.prep_cache_misses, a.studies
            ),
        );
        check(
            (0.0..=1.0).contains(&a.prep_cache_hit_rate),
            format!("server: hit rate {} outside [0, 1]", a.prep_cache_hit_rate),
        );

        let m = &a.multi_conn;
        let mf = floor(&baseline.server_multi);
        check(
            m.speedup >= mf,
            format!(
                "server multi_conn: speedup {:.2} below floor {mf:.2}",
                m.speedup
            ),
        );
        check(
            m.agreement,
            "server multi_conn: fronts diverged from standalone runs".into(),
        );
        check(
            m.connections >= 8 && m.studies >= 2 * m.connections,
            format!(
                "server multi_conn: {} connections / {} studies — the phase \
                 must drive at least 8 concurrent connections, 2 studies each",
                m.connections, m.studies
            ),
        );
        check(
            m.in_flight_peak <= m.max_concurrent,
            format!(
                "server multi_conn: in-flight peak {} exceeds the process-wide \
                 cap {} — the admission semaphore leaked",
                m.in_flight_peak, m.max_concurrent
            ),
        );
        check(
            m.in_flight_peak >= m.max_concurrent,
            format!(
                "server multi_conn: in-flight peak {} never reached the cap {} — \
                 the connections ran effectively sequentially",
                m.in_flight_peak, m.max_concurrent
            ),
        );
        check(
            m.queue_depth_peak >= 1,
            "server multi_conn: no study ever queued — the workload never \
             saturated the admission cap"
                .into(),
        );
        check(
            m.cancelled_done_frames == 0,
            format!(
                "server multi_conn: cancelled study produced {} Done frame(s) — \
                 a cancelled study's terminal frame must be Cancelled",
                m.cancelled_done_frames
            ),
        );
        check(
            m.studies_per_sec > 0.0 && m.ms_min > 0.0 && m.ms_min.is_finite(),
            "server multi_conn: non-positive timing".into(),
        );
    }

    if errors.is_empty() {
        println!("bench-guard: all {checks} checks passed");
    } else {
        for e in &errors {
            eprintln!("bench-guard: FAIL {e}");
        }
        std::process::exit(1);
    }
}

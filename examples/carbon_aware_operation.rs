//! Operational strategies beyond sizing (paper §3.3/§4.3): dispatch
//! policies and carbon-aware load shifting on a fixed microgrid.
//!
//! ```bash
//! cargo run --release --example carbon_aware_operation
//! ```

use microgrid_opt::core::experiments::beyond;
use microgrid_opt::prelude::*;

fn main() {
    let scenario = ScenarioConfig::paper_houston().prepare();
    // A mid-size build: 12 MW wind, 8 MW solar, 22.5 MWh storage.
    let comp = Composition::new(4, 8_000.0, 22_500.0);

    println!("policies on {} with {comp}:", scenario.site_name());
    let out = beyond::run(&scenario, comp, 42);

    println!(
        "  {:<26} {:>10} {:>12} {:>9} {:>10} {:>8}",
        "policy", "tCO2/day", "cost $/yr", "cycles", "life(yrs)", "cov %"
    );
    for p in &out.policies {
        println!(
            "  {:<26} {:>10.2} {:>12.0} {:>9.0} {:>10.1} {:>8.2}",
            p.policy,
            p.operational_t_per_day,
            p.energy_cost_usd,
            p.battery_cycles,
            p.battery_lifetime_years,
            p.coverage_pct
        );
    }

    println!("\ncarbon-aware load shifting (deferrable fraction of daily energy):");
    println!(
        "  {:>12} {:>12} {:>12}",
        "flexibility", "tCO2/day", "reduction"
    );
    for s in &out.shifting {
        println!(
            "  {:>11.0}% {:>12.3} {:>11.1}%",
            s.flexible_fraction * 100.0,
            s.operational_t_per_day,
            s.reduction_pct
        );
    }

    println!("\nthree-objective search (operational, embodied, cost):");
    let t = &out.tri_objective;
    println!(
        "  front size {} from {} sampled trials",
        t.front_size, t.sampled
    );
    println!(
        "  cleanest point:  {:.2} t/day, {:.0} t embodied, ${:.0}/yr",
        t.cleanest[0], t.cleanest[1], t.cleanest[2]
    );
    println!(
        "  cheapest point:  {:.2} t/day, {:.0} t embodied, ${:.0}/yr",
        t.cheapest[0], t.cheapest[1], t.cheapest[2]
    );
}

//! The optimization problem abstraction.
//!
//! Search spaces are discrete and rectangular — each dimension is an index
//! into a finite choice list, exactly like Optuna's `suggest_categorical` /
//! `suggest_int` over the paper's composition grid. A genome is the vector
//! of per-dimension choice indices.
//!
//! Every search strategy funnels its cohorts through
//! [`Problem::evaluate_batch`], so a problem backed by a batched engine
//! (like `mgopt-core`'s `CompositionProblem` over the columnar microgrid
//! evaluator) accelerates NSGA-II, random, exhaustive and pruning searches
//! at once. The default implementation falls back to rayon-parallel scalar
//! evaluation, so closure-defined problems keep working unchanged.
//!
//! Problems may additionally declare **constraints**: per-genome violation
//! magnitudes (`0.0` = satisfied) returned alongside the objectives in an
//! [`Evaluation`]. Samplers apply Deb's constraint-dominance (a feasible
//! point beats any infeasible one; infeasible points rank by total
//! violation) — see [`crate::pareto::constrained_dominates`].

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A candidate solution: one choice index per dimension.
pub type Genome = Vec<u16>;

/// Objectives plus constraint violations of one genome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Objective vector (all minimized).
    pub objectives: Vec<f64>,
    /// One violation magnitude per constraint: `0.0` when satisfied,
    /// positive when violated (in the constraint's own units).
    pub violations: Vec<f64>,
}

impl Evaluation {
    /// An evaluation of an unconstrained problem.
    pub fn unconstrained(objectives: Vec<f64>) -> Self {
        Self {
            objectives,
            violations: Vec::new(),
        }
    }

    /// `true` when every constraint is satisfied (vacuously for none).
    pub fn is_feasible(&self) -> bool {
        self.violations.iter().all(|&v| v <= 0.0)
    }

    /// Sum of the violation magnitudes (the constraint-dominance key).
    pub fn total_violation(&self) -> f64 {
        self.violations.iter().map(|v| v.max(0.0)).sum()
    }
}

/// A multi-objective minimization problem over a discrete space.
///
/// Implementations must be `Sync`: trials are evaluated in parallel.
pub trait Problem: Sync {
    /// Number of choices in each dimension (all ≥ 1).
    fn dims(&self) -> &[usize];

    /// Number of objectives (all minimized).
    fn n_objectives(&self) -> usize;

    /// Evaluate a genome. Must be deterministic and pure.
    fn evaluate(&self, genome: &[u16]) -> Vec<f64>;

    /// Evaluate a cohort of genomes, returning objective vectors in input
    /// order.
    ///
    /// The default evaluates scalars in parallel; implementations backed
    /// by a batched engine should override this with a single batched
    /// pass. Results must equal per-genome [`Problem::evaluate`] calls.
    fn evaluate_batch(&self, genomes: &[Genome]) -> Vec<Vec<f64>> {
        genomes.par_iter().map(|g| self.evaluate(g)).collect()
    }

    /// Number of constraints (default: unconstrained).
    fn n_constraints(&self) -> usize {
        0
    }

    /// Evaluate a genome's objectives *and* constraint violations.
    ///
    /// The default wraps [`Problem::evaluate`] with no violations;
    /// constrained problems must override it (and keep the objectives
    /// identical to `evaluate`).
    fn evaluate_constrained(&self, genome: &[u16]) -> Evaluation {
        Evaluation::unconstrained(self.evaluate(genome))
    }

    /// Evaluate a cohort's objectives and violations, in input order.
    ///
    /// The unconstrained default rides [`Problem::evaluate_batch`] so
    /// batched engines stay on the fast path; constrained problems fall
    /// back to parallel scalar [`Problem::evaluate_constrained`] calls
    /// unless they override this with a batched pass of their own.
    fn evaluate_batch_constrained(&self, genomes: &[Genome]) -> Vec<Evaluation> {
        if self.n_constraints() == 0 {
            self.evaluate_batch(genomes)
                .into_iter()
                .map(Evaluation::unconstrained)
                .collect()
        } else {
            genomes
                .par_iter()
                .map(|g| self.evaluate_constrained(g))
                .collect()
        }
    }

    /// Total number of points in the space.
    fn space_size(&self) -> usize {
        self.dims().iter().product()
    }

    /// The genome at flat index `i` (row-major).
    fn genome_at(&self, mut i: usize) -> Genome {
        let dims = self.dims();
        let mut g = vec![0u16; dims.len()];
        for d in (0..dims.len()).rev() {
            g[d] = (i % dims[d]) as u16;
            i /= dims[d];
        }
        g
    }

    /// Flat index of a genome (row-major).
    fn index_of(&self, genome: &[u16]) -> usize {
        let dims = self.dims();
        assert_eq!(genome.len(), dims.len());
        let mut i = 0usize;
        for (d, &g) in genome.iter().enumerate() {
            debug_assert!((g as usize) < dims[d], "gene out of range");
            i = i * dims[d] + g as usize;
        }
        i
    }
}

/// Boxed constraint-violation closure, as attached by
/// [`FnProblem::with_constraints`].
type ViolationFn = Box<dyn Fn(&[u16]) -> Vec<f64> + Sync + Send>;

/// A problem defined by a closure (used heavily in tests and benches).
pub struct FnProblem<F: Fn(&[u16]) -> Vec<f64> + Sync> {
    dims: Vec<usize>,
    n_objectives: usize,
    f: F,
    n_constraints: usize,
    violations: Option<ViolationFn>,
}

impl<F: Fn(&[u16]) -> Vec<f64> + Sync> FnProblem<F> {
    /// Create a problem from dimensions and an objective closure.
    pub fn new(dims: Vec<usize>, n_objectives: usize, f: F) -> Self {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d >= 1));
        assert!(n_objectives >= 1);
        Self {
            dims,
            n_objectives,
            f,
            n_constraints: 0,
            violations: None,
        }
    }

    /// Attach constraints: `violations` returns one magnitude per
    /// constraint (`0.0` = satisfied, positive = violated).
    pub fn with_constraints(
        mut self,
        n_constraints: usize,
        violations: impl Fn(&[u16]) -> Vec<f64> + Sync + Send + 'static,
    ) -> Self {
        assert!(n_constraints >= 1);
        self.n_constraints = n_constraints;
        self.violations = Some(Box::new(violations));
        self
    }
}

impl<F: Fn(&[u16]) -> Vec<f64> + Sync> Problem for FnProblem<F> {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn n_objectives(&self) -> usize {
        self.n_objectives
    }

    fn evaluate(&self, genome: &[u16]) -> Vec<f64> {
        (self.f)(genome)
    }

    fn n_constraints(&self) -> usize {
        self.n_constraints
    }

    fn evaluate_constrained(&self, genome: &[u16]) -> Evaluation {
        let violations = match &self.violations {
            Some(v) => {
                let out = v(genome);
                debug_assert_eq!(out.len(), self.n_constraints);
                out
            }
            None => Vec::new(),
        };
        Evaluation {
            objectives: (self.f)(genome),
            violations,
        }
    }
}

/// One evaluated trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// The evaluated genome.
    pub genome: Genome,
    /// Its objective vector (minimized).
    pub objectives: Vec<f64>,
    /// Constraint violation magnitudes (empty for unconstrained problems,
    /// and in artifacts written before constraints existed).
    #[serde(default)]
    pub violations: Vec<f64>,
}

impl Trial {
    /// Create an unconstrained trial.
    pub fn new(genome: Genome, objectives: Vec<f64>) -> Self {
        Self {
            genome,
            objectives,
            violations: Vec::new(),
        }
    }

    /// Create a trial from a full [`Evaluation`].
    pub fn from_evaluation(genome: Genome, evaluation: Evaluation) -> Self {
        Self {
            genome,
            objectives: evaluation.objectives,
            violations: evaluation.violations,
        }
    }

    /// `true` when every constraint is satisfied (vacuously for none).
    pub fn is_feasible(&self) -> bool {
        self.violations.iter().all(|&v| v <= 0.0)
    }

    /// Sum of the violation magnitudes (the constraint-dominance key).
    pub fn total_violation(&self) -> f64 {
        self.violations.iter().map(|v| v.max(0.0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> FnProblem<impl Fn(&[u16]) -> Vec<f64> + Sync> {
        FnProblem::new(vec![3, 4, 5], 2, |g| {
            vec![g[0] as f64, (g[1] + g[2]) as f64]
        })
    }

    #[test]
    fn space_size_is_product() {
        assert_eq!(problem().space_size(), 60);
    }

    #[test]
    fn genome_index_round_trip() {
        let p = problem();
        for i in 0..p.space_size() {
            let g = p.genome_at(i);
            assert_eq!(p.index_of(&g), i);
            for (d, &gene) in g.iter().enumerate() {
                assert!((gene as usize) < p.dims()[d]);
            }
        }
    }

    #[test]
    fn first_and_last_genomes() {
        let p = problem();
        assert_eq!(p.genome_at(0), vec![0, 0, 0]);
        assert_eq!(p.genome_at(59), vec![2, 3, 4]);
    }

    #[test]
    fn evaluation_through_closure() {
        let p = problem();
        assert_eq!(p.evaluate(&[2, 1, 3]), vec![2.0, 4.0]);
        assert_eq!(p.n_objectives(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_dims_panics() {
        FnProblem::new(vec![], 1, |_| vec![0.0]);
    }

    #[test]
    fn unconstrained_problems_report_no_violations() {
        let p = problem();
        assert_eq!(p.n_constraints(), 0);
        let e = p.evaluate_constrained(&[2, 1, 3]);
        assert_eq!(e.objectives, vec![2.0, 4.0]);
        assert!(e.violations.is_empty() && e.is_feasible());
        assert_eq!(e.total_violation(), 0.0);
        // The batched default rides evaluate_batch.
        let batch = p.evaluate_batch_constrained(&[vec![2, 1, 3], vec![0, 0, 0]]);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|e| e.is_feasible()));
    }

    #[test]
    fn constrained_fn_problem_reports_violations() {
        // Constraint: g0 <= 1, violation in units of exceedance.
        let p = problem().with_constraints(1, |g| vec![(g[0] as f64 - 1.0).max(0.0)]);
        assert_eq!(p.n_constraints(), 1);
        assert!(p.evaluate_constrained(&[1, 0, 0]).is_feasible());
        let e = p.evaluate_constrained(&[2, 1, 3]);
        assert!(!e.is_feasible());
        assert_eq!(e.total_violation(), 1.0);
        // Objectives stay identical to the unconstrained path.
        assert_eq!(e.objectives, p.evaluate(&[2, 1, 3]));
        // The batched default now routes through evaluate_constrained.
        let batch = p.evaluate_batch_constrained(&[vec![0, 0, 0], vec![2, 0, 0]]);
        assert!(batch[0].is_feasible() && !batch[1].is_feasible());
    }

    #[test]
    fn trial_violations_default_on_deserialize() {
        // Artifacts written before constraints existed still load.
        let t: Trial = serde_json::from_str(r#"{"genome":[1],"objectives":[2.0]}"#).unwrap();
        assert!(t.violations.is_empty() && t.is_feasible());
        let t = Trial::from_evaluation(
            vec![1],
            Evaluation {
                objectives: vec![2.0],
                violations: vec![0.5],
            },
        );
        assert!(!t.is_feasible());
        assert_eq!(t.total_violation(), 0.5);
    }
}

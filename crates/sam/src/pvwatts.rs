//! The PVWatts v5 photovoltaic performance chain (Dobos 2014, NREL).
//!
//! Pipeline per time step:
//!
//! 1. **Transposition** — beam, sky-diffuse and ground-reflected irradiance
//!    on the tilted array. Isotropic sky by default; HDKR (Hay-Davies-
//!    Klucher-Reindl with circumsolar brightening) optionally.
//! 2. **Cell temperature** — NOCT model with a light wind correction.
//! 3. **DC power** — linear in POA with temperature coefficient, then flat
//!    system losses (soiling, wiring, mismatch…).
//! 4. **AC power** — the PVWatts part-load inverter efficiency curve,
//!    clipped at the inverter rating (`dc_ac_ratio`).

use mgopt_units::{SimTime, TimeSeries};
use mgopt_weather::solar_pos::{sun_position, SunPosition};
use mgopt_weather::WeatherYear;
use serde::{Deserialize, Serialize};

use crate::GenerationModel;

/// Sky-diffuse transposition model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranspositionModel {
    /// Isotropic sky (Liu-Jordan).
    Isotropic,
    /// Hay-Davies-Klucher-Reindl: circumsolar brightening + horizon band.
    Hdkr,
}

/// Parameters of a PVWatts-style system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvSystemParams {
    /// Nameplate DC capacity, kW.
    pub capacity_dc_kw: f64,
    /// Array tilt from horizontal, degrees.
    pub tilt_deg: f64,
    /// Array azimuth, degrees clockwise from north (180 = south).
    pub azimuth_deg: f64,
    /// DC/AC ratio (inverter loading ratio). PVWatts default 1.2.
    pub dc_ac_ratio: f64,
    /// Nominal inverter efficiency. PVWatts default 0.96.
    pub inverter_efficiency: f64,
    /// Flat system losses fraction. PVWatts default 0.14.
    pub system_losses: f64,
    /// Maximum-power temperature coefficient, 1/°C. PVWatts default -0.0047.
    pub temp_coeff_per_c: f64,
    /// Nominal operating cell temperature, °C.
    pub noct_c: f64,
    /// Ground albedo.
    pub albedo: f64,
    /// Transposition model.
    pub transposition: TranspositionModel,
}

impl PvSystemParams {
    /// PVWatts defaults for a fixed-tilt utility array at a site latitude
    /// (tilt = latitude is the standard fixed-tilt choice).
    pub fn defaults(capacity_dc_kw: f64, latitude_deg: f64) -> Self {
        Self {
            capacity_dc_kw,
            tilt_deg: latitude_deg.abs().clamp(0.0, 60.0),
            azimuth_deg: if latitude_deg >= 0.0 { 180.0 } else { 0.0 },
            dc_ac_ratio: 1.2,
            inverter_efficiency: 0.96,
            system_losses: 0.14,
            temp_coeff_per_c: -0.0047,
            noct_c: 45.0,
            albedo: 0.2,
            transposition: TranspositionModel::Isotropic,
        }
    }
}

/// A PVWatts-style photovoltaic system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvSystem {
    params: PvSystemParams,
}

/// Plane-of-array irradiance components, W/m².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoaIrradiance {
    /// Beam component.
    pub beam: f64,
    /// Sky-diffuse component.
    pub sky_diffuse: f64,
    /// Ground-reflected component.
    pub ground: f64,
}

impl PoaIrradiance {
    /// Total POA irradiance.
    pub fn total(&self) -> f64 {
        self.beam + self.sky_diffuse + self.ground
    }
}

impl PvSystem {
    /// Create a system from explicit parameters.
    ///
    /// # Panics
    /// Panics on non-positive capacity or out-of-range parameters.
    pub fn new(params: PvSystemParams) -> Self {
        assert!(params.capacity_dc_kw > 0.0, "capacity must be positive");
        assert!((0.0..=90.0).contains(&params.tilt_deg), "tilt out of range");
        assert!(
            (0.0..360.0).contains(&params.azimuth_deg),
            "azimuth out of range"
        );
        assert!(params.dc_ac_ratio > 0.0);
        assert!((0.0..=1.0).contains(&params.inverter_efficiency));
        assert!((0.0..1.0).contains(&params.system_losses));
        Self { params }
    }

    /// PVWatts defaults at a site latitude.
    pub fn with_capacity_kw(capacity_dc_kw: f64, latitude_deg: f64) -> Self {
        Self::new(PvSystemParams::defaults(capacity_dc_kw, latitude_deg))
    }

    /// The parameter set.
    pub fn params(&self) -> &PvSystemParams {
        &self.params
    }

    /// Angle-of-incidence cosine between the sun and the array normal.
    pub fn cos_aoi(&self, pos: &SunPosition) -> f64 {
        let beta = self.params.tilt_deg.to_radians();
        let gamma = self.params.azimuth_deg.to_radians();
        let cos = pos.zenith_rad.cos() * beta.cos()
            + pos.zenith_rad.sin() * beta.sin() * (pos.azimuth_rad - gamma).cos();
        cos.max(0.0)
    }

    /// Transpose horizontal irradiance onto the array plane.
    pub fn transpose(
        &self,
        ghi: f64,
        dni: f64,
        dhi: f64,
        pos: &SunPosition,
        day_of_year: u32,
    ) -> PoaIrradiance {
        let beta = self.params.tilt_deg.to_radians();
        let cos_aoi = self.cos_aoi(pos);
        let beam = dni * cos_aoi;
        let ground = ghi * self.params.albedo * (1.0 - beta.cos()) / 2.0;

        let sky_diffuse = match self.params.transposition {
            TranspositionModel::Isotropic => dhi * (1.0 + beta.cos()) / 2.0,
            TranspositionModel::Hdkr => {
                // Anisotropy index: beam transmittance of the atmosphere.
                let ext = mgopt_weather::solar_pos::extraterrestrial_normal_w_m2(day_of_year);
                let cos_z = pos.cos_zenith();
                let ai = if ext > 1.0 {
                    (dni / ext).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let rb = if cos_z > 0.017 { cos_aoi / cos_z } else { 0.0 };
                // Horizon-brightening modulation (Reindl).
                let f = if ghi > 0.0 {
                    (beam.max(0.0) / ghi).sqrt().min(1.0)
                } else {
                    0.0
                };
                let iso = dhi * (1.0 - ai) * (1.0 + beta.cos()) / 2.0
                    * (1.0 + f * (beta / 2.0).sin().powi(3));
                let circumsolar = dhi * ai * rb;
                (iso + circumsolar).max(0.0)
            }
        };
        PoaIrradiance {
            beam,
            sky_diffuse,
            ground,
        }
    }

    /// NOCT cell temperature with a light wind correction.
    ///
    /// `T_cell = T_amb + POA/800 × (NOCT − 20) × f(wind)`; the wind factor
    /// follows SAM's simple thermal derate (stronger convective cooling at
    /// higher wind speed, normalized to 1 at the NOCT test condition 1 m/s).
    pub fn cell_temperature_c(&self, poa_w_m2: f64, temp_air_c: f64, wind_ms: f64) -> f64 {
        let wind_factor = 9.5 / (5.7 + 3.8 * wind_ms.max(0.0));
        temp_air_c + poa_w_m2 / 800.0 * (self.params.noct_c - 20.0) * wind_factor
    }

    /// DC power (kW) from POA irradiance and cell temperature, including
    /// flat system losses.
    pub fn dc_power_kw(&self, poa_w_m2: f64, cell_temp_c: f64) -> f64 {
        if poa_w_m2 <= 0.0 {
            return 0.0;
        }
        let p = self.params.capacity_dc_kw
            * (poa_w_m2 / 1_000.0)
            * (1.0 + self.params.temp_coeff_per_c * (cell_temp_c - 25.0));
        (p * (1.0 - self.params.system_losses)).max(0.0)
    }

    /// AC power (kW) through the PVWatts part-load inverter curve.
    pub fn ac_power_kw(&self, dc_kw: f64) -> f64 {
        if dc_kw <= 0.0 {
            return 0.0;
        }
        let pdc0 = self.params.capacity_dc_kw;
        let pac0 = pdc0 / self.params.dc_ac_ratio * self.params.inverter_efficiency;
        // PVWatts v5 part-load efficiency, referenced to eta at full load.
        let zeta = (dc_kw / pdc0).clamp(0.01, 1.5);
        let eta =
            self.params.inverter_efficiency / 0.9637 * (-0.0162 * zeta - 0.0059 / zeta + 0.9858);
        (dc_kw * eta.clamp(0.0, 1.0)).min(pac0)
    }
}

impl GenerationModel for PvSystem {
    fn simulate(&self, weather: &WeatherYear) -> TimeSeries {
        let step = weather.step();
        let n = weather.len();
        let mut values = Vec::with_capacity(n);
        // Turbine-height wind is irrelevant here; PV arrays sit near the
        // ground, so shear the reference wind down to 2 m.
        let wind_scale = (2.0f64 / weather.wind_ref_height_m).powf(weather.wind_shear_exponent);
        for i in 0..n {
            let t = SimTime::from_secs(i as i64 * step.secs());
            let pos = sun_position(&weather.location, t);
            let poa = self.transpose(
                weather.ghi.values()[i],
                weather.dni.values()[i],
                weather.dhi.values()[i],
                &pos,
                t.calendar().day_of_year,
            );
            let wind = weather.wind_speed_ms.values()[i] * wind_scale;
            let t_cell = self.cell_temperature_c(poa.total(), weather.temp_air_c.values()[i], wind);
            let dc = self.dc_power_kw(poa.total(), t_cell);
            values.push(self.ac_power_kw(dc));
        }
        TimeSeries::new(step, values)
    }

    fn rated_kw(&self) -> f64 {
        // Report against DC nameplate, matching how the paper sizes the
        // farm ("rated capacities from 0 MW to 40 MW").
        self.params.capacity_dc_kw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::SimDuration;
    use mgopt_weather::{Climate, WeatherGenerator};

    fn berkeley_weather() -> WeatherYear {
        WeatherGenerator::new(Climate::berkeley(), 42).generate(SimDuration::from_hours(1.0))
    }

    fn system() -> PvSystem {
        PvSystem::with_capacity_kw(4_000.0, 37.87)
    }

    #[test]
    fn night_produces_zero() {
        let w = berkeley_weather();
        let ts = system().simulate(&w);
        for day in (0..365).step_by(53) {
            assert_eq!(ts.values()[day * 24 + 2], 0.0, "day {day} 02:00");
        }
    }

    #[test]
    fn capacity_factor_in_utility_band() {
        let w = berkeley_weather();
        let cf = system().capacity_factor(&w);
        // Fixed-tilt coastal California: ~0.18-0.26 DC capacity factor.
        assert!((0.15..0.30).contains(&cf), "berkeley PV CF {cf}");
    }

    #[test]
    fn berkeley_beats_houston_solar() {
        let wb = berkeley_weather();
        let wh =
            WeatherGenerator::new(Climate::houston(), 42).generate(SimDuration::from_hours(1.0));
        let sys_b = PvSystem::with_capacity_kw(4_000.0, wb.location.latitude_deg);
        let sys_h = PvSystem::with_capacity_kw(4_000.0, wh.location.latitude_deg);
        let cfb = sys_b.capacity_factor(&wb);
        let cfh = sys_h.capacity_factor(&wh);
        assert!(cfb > cfh, "berkeley {cfb} should beat houston {cfh}");
    }

    #[test]
    fn output_scales_linearly_with_capacity() {
        let w = berkeley_weather();
        let small = PvSystem::with_capacity_kw(1_000.0, 37.87).simulate(&w);
        let large = PvSystem::with_capacity_kw(4_000.0, 37.87).simulate(&w);
        // Inverter clipping is ratio-preserving here since dc_ac_ratio is
        // identical; allow small tolerance.
        let ratio = large.energy_kwh() / small.energy_kwh();
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn ac_never_exceeds_inverter_rating() {
        let w = berkeley_weather();
        let sys = system();
        let ts = sys.simulate(&w);
        let pac0 = 4_000.0 / 1.2 * 0.96;
        for &v in ts.values() {
            assert!(v <= pac0 + 1e-9, "{v} exceeds inverter rating {pac0}");
        }
    }

    #[test]
    fn hot_cells_lose_power() {
        let sys = system();
        let cool = sys.dc_power_kw(800.0, 25.0);
        let hot = sys.dc_power_kw(800.0, 60.0);
        assert!(hot < cool);
        let expected = cool * (1.0 - 0.0047 * 35.0);
        assert!((hot - expected).abs() < 1e-9);
    }

    #[test]
    fn cell_temperature_above_ambient_in_sun() {
        let sys = system();
        let t = sys.cell_temperature_c(800.0, 20.0, 1.0);
        assert!(t > 40.0 && t < 55.0, "cell temp {t}");
        // Stronger wind cools the module.
        let windy = sys.cell_temperature_c(800.0, 20.0, 8.0);
        assert!(windy < t);
        // No sun: cell = ambient.
        assert_eq!(sys.cell_temperature_c(0.0, 20.0, 1.0), 20.0);
    }

    #[test]
    fn transposition_gains_on_tilted_array_in_winter() {
        // At noon in winter, a latitude-tilted array sees more irradiance
        // than the horizontal GHI.
        let w = berkeley_weather();
        let sys = system();
        let t = SimTime::from_secs(354 * 86_400 + 12 * 3_600);
        let i = 354 * 24 + 12;
        let pos = sun_position(&w.location, t);
        if w.ghi.values()[i] > 300.0 {
            let poa = sys.transpose(
                w.ghi.values()[i],
                w.dni.values()[i],
                w.dhi.values()[i],
                &pos,
                354,
            );
            assert!(poa.total() > w.ghi.values()[i]);
        }
    }

    #[test]
    fn hdkr_at_least_isotropic_under_clear_sky() {
        let mut params = PvSystemParams::defaults(1_000.0, 37.87);
        let iso_sys = PvSystem::new(params.clone());
        params.transposition = TranspositionModel::Hdkr;
        let hdkr_sys = PvSystem::new(params);
        let w = berkeley_weather();
        // Compare annual energy: HDKR redistributes diffuse toward the sun,
        // typically a small gain for equator-facing fixed tilt.
        let e_iso = iso_sys.simulate(&w).energy_kwh();
        let e_hdkr = hdkr_sys.simulate(&w).energy_kwh();
        let gain = e_hdkr / e_iso;
        assert!((0.98..1.10).contains(&gain), "HDKR/iso gain {gain}");
    }

    #[test]
    fn inverter_part_load_efficiency_shape() {
        let sys = system();
        // Efficiency at 10% load below efficiency at full load.
        let eta_low = sys.ac_power_kw(400.0) / 400.0;
        let eta_full = sys.ac_power_kw(3_300.0) / 3_300.0;
        assert!(eta_low < eta_full, "low {eta_low} full {eta_full}");
        assert!(eta_full <= 0.97);
    }

    #[test]
    fn poa_components_nonnegative() {
        let w = berkeley_weather();
        let sys = system();
        for i in (0..w.len()).step_by(123) {
            let t = SimTime::from_secs(i as i64 * 3_600);
            let pos = sun_position(&w.location, t);
            let poa = sys.transpose(
                w.ghi.values()[i],
                w.dni.values()[i],
                w.dhi.values()[i],
                &pos,
                t.calendar().day_of_year,
            );
            assert!(poa.beam >= 0.0 && poa.sky_diffuse >= 0.0 && poa.ground >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        PvSystem::with_capacity_kw(0.0, 37.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn dc_power_nonnegative_bounded(
            poa in 0.0f64..1_400.0,
            t_cell in -20.0f64..90.0,
        ) {
            let sys = PvSystem::with_capacity_kw(1_000.0, 35.0);
            let p = sys.dc_power_kw(poa, t_cell);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= 1_000.0 * 1.4 * 1.35); // POA overload + cold boost
        }

        #[test]
        fn ac_monotone_in_dc(d1 in 0.0f64..4_000.0, d2 in 0.0f64..4_000.0) {
            let sys = PvSystem::with_capacity_kw(4_000.0, 35.0);
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(sys.ac_power_kw(lo) <= sys.ac_power_kw(hi) + 1e-9);
        }
    }
}

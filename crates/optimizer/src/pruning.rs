//! Multi-fidelity search with successive halving — the "dynamic pruning or
//! early stopping for non-promising simulation runs" the paper names as
//! future work (§4.4).
//!
//! The idea: most of a year-long co-simulation's cost is wasted on
//! configurations that a few simulated weeks already rule out. Successive
//! halving evaluates a large initial cohort at low fidelity (a fraction of
//! the year), keeps the most promising `1/eta` per rung (multi-objective:
//! by non-dominated rank, then crowding distance), and re-evaluates the
//! survivors at `eta×` higher fidelity until full-year fidelity is
//! reached. The cost bookkeeping is in *full-evaluation equivalents* so
//! speedups are comparable to trial counts.

use mgopt_telemetry as telemetry;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::nsga2::sample_unique_genomes;
use crate::pareto::{crowding_distance, fast_non_dominated_sort};
use crate::problem::{Genome, Problem, Trial};
use crate::study::OptimizationResult;

/// A problem that can be evaluated at reduced fidelity.
///
/// `fidelity` is in `(0, 1]`; `1.0` must agree with [`Problem::evaluate`].
/// Lower fidelities may be noisy approximations (e.g. simulating only the
/// first fraction of the year).
pub trait MultiFidelityProblem: Problem {
    /// Evaluate a genome at the given fidelity.
    fn evaluate_at_fidelity(&self, genome: &[u16], fidelity: f64) -> Vec<f64>;

    /// Evaluate a whole rung cohort at one fidelity, in input order.
    ///
    /// The default evaluates scalars in parallel; batched-engine problems
    /// override this so every rung is a single columnar pass.
    fn evaluate_batch_at_fidelity(&self, genomes: &[Genome], fidelity: f64) -> Vec<Vec<f64>> {
        genomes
            .par_iter()
            .map(|g| self.evaluate_at_fidelity(g, fidelity))
            .collect()
    }
}

/// Successive-halving configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuccessiveHalvingConfig {
    /// Initial cohort size.
    pub initial_cohort: usize,
    /// Keep `1/eta` of the cohort per rung (eta ≥ 2).
    pub eta: usize,
    /// Fidelity of the first rung, `(0, 1]`.
    pub min_fidelity: f64,
    /// RNG seed for the initial cohort.
    pub seed: u64,
}

impl Default for SuccessiveHalvingConfig {
    fn default() -> Self {
        Self {
            initial_cohort: 128,
            eta: 2,
            min_fidelity: 1.0 / 8.0,
            seed: 0,
        }
    }
}

/// Outcome of a successive-halving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuccessiveHalvingResult {
    /// Full-fidelity survivors (the final rung), as trials.
    pub survivors: Vec<Trial>,
    /// All full-fidelity evaluations performed.
    pub full_fidelity_history: Vec<Trial>,
    /// Total cost in full-evaluation equivalents (Σ fidelity per eval).
    pub equivalent_full_evaluations: f64,
    /// Number of raw evaluations at any fidelity.
    pub raw_evaluations: usize,
    /// The rung fidelities visited, in order.
    pub rung_fidelities: Vec<f64>,
}

impl SuccessiveHalvingResult {
    /// Convert into a plain [`OptimizationResult`] over the full-fidelity
    /// history (for Pareto-front extraction and recovery metrics).
    pub fn as_optimization_result(&self) -> OptimizationResult {
        OptimizationResult::from_history(
            self.full_fidelity_history.clone(),
            self.raw_evaluations,
            self.full_fidelity_history.len(),
        )
    }
}

/// Rank a cohort's objective vectors: best-first by (front rank asc,
/// crowding desc).
fn rank_cohort(objectives: &[Vec<f64>]) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(objectives);
    let mut order: Vec<usize> = Vec::with_capacity(objectives.len());
    for front in &fronts {
        let d = crowding_distance(objectives, front);
        let mut members: Vec<(usize, f64)> = front.iter().copied().zip(d).collect();
        members.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN crowding"));
        order.extend(members.into_iter().map(|(i, _)| i));
    }
    order
}

/// Run successive halving on a multi-fidelity problem.
///
/// Constrained problems are supported at the **final rung only**: the
/// full-fidelity cohort goes through
/// [`Problem::evaluate_batch_constrained`], so survivors are the feasible
/// front of the full-fidelity history. Reduced-fidelity pruning decisions
/// remain objective-only ([`MultiFidelityProblem`] defines no per-fidelity
/// constraint semantics), so a genome may survive rungs it would fail at
/// full fidelity — never the other way around.
pub fn successive_halving(
    problem: &dyn MultiFidelityProblem,
    config: &SuccessiveHalvingConfig,
) -> SuccessiveHalvingResult {
    assert!(config.eta >= 2, "eta must be at least 2");
    assert!(
        config.min_fidelity > 0.0 && config.min_fidelity <= 1.0,
        "min_fidelity in (0, 1]"
    );
    assert!(config.initial_cohort >= 1);

    // Keep this sampler's randomness independent of NSGA-II's at equal seeds.
    const SEED_MIX: u64 = 0x5417_a1f0;
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ SEED_MIX);
    let mut cohort: Vec<Genome> =
        sample_unique_genomes(problem.dims(), config.initial_cohort, &mut rng);

    let mut fidelity = config.min_fidelity;
    let mut cost = 0.0f64;
    let mut raw = 0usize;
    let mut rung_fidelities = Vec::new();
    let mut full_fidelity_history: Vec<Trial> = Vec::new();

    loop {
        if fidelity >= 1.0 - 1e-12 {
            // Final rung: evaluate through the constrained path so any
            // violations land on the trials — the (constraint-aware)
            // non-dominated set of the full-fidelity history is then the
            // *feasible* front for constrained problems.
            rung_fidelities.push(1.0);
            let evaluations = problem.evaluate_batch_constrained(&cohort);
            cost += cohort.len() as f64;
            raw += cohort.len();
            full_fidelity_history.extend(
                cohort
                    .iter()
                    .cloned()
                    .zip(evaluations)
                    .map(|(g, e)| Trial::from_evaluation(g, e)),
            );
            let survivors = crate::pareto::non_dominated_trials(&full_fidelity_history);
            telemetry::Event::new("rung")
                .u64("rung", rung_fidelities.len() as u64 - 1)
                .f64("fidelity", 1.0)
                .u64("cohort", cohort.len() as u64)
                .u64("kept", survivors.len() as u64)
                .emit();
            return SuccessiveHalvingResult {
                survivors,
                full_fidelity_history,
                equivalent_full_evaluations: cost,
                raw_evaluations: raw,
                rung_fidelities,
            };
        }

        rung_fidelities.push(fidelity);
        let objectives = problem.evaluate_batch_at_fidelity(&cohort, fidelity);
        cost += fidelity * cohort.len() as f64;
        raw += cohort.len();
        let order = rank_cohort(&objectives);

        // Keep the best 1/eta (at least enough to stay meaningful).
        let keep = (cohort.len() / config.eta).max(1);
        telemetry::Event::new("rung")
            .u64("rung", rung_fidelities.len() as u64 - 1)
            .f64("fidelity", fidelity)
            .u64("cohort", cohort.len() as u64)
            .u64("kept", keep as u64)
            .emit();
        cohort = order
            .into_iter()
            .take(keep)
            .map(|i| cohort[i].clone())
            .collect();
        fidelity = (fidelity * config.eta as f64).min(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;

    /// Wraps an FnProblem with a fidelity-noise model: low fidelity adds a
    /// deterministic pseudo-noise that vanishes at fidelity 1.
    struct NoisyProblem<F: Fn(&[u16]) -> Vec<f64> + Sync> {
        inner: FnProblem<F>,
    }

    impl<F: Fn(&[u16]) -> Vec<f64> + Sync> Problem for NoisyProblem<F> {
        fn dims(&self) -> &[usize] {
            self.inner.dims()
        }
        fn n_objectives(&self) -> usize {
            self.inner.n_objectives()
        }
        fn evaluate(&self, genome: &[u16]) -> Vec<f64> {
            self.inner.evaluate(genome)
        }
        fn n_constraints(&self) -> usize {
            self.inner.n_constraints()
        }
        fn evaluate_constrained(&self, genome: &[u16]) -> crate::problem::Evaluation {
            self.inner.evaluate_constrained(genome)
        }
    }

    impl<F: Fn(&[u16]) -> Vec<f64> + Sync> MultiFidelityProblem for NoisyProblem<F> {
        fn evaluate_at_fidelity(&self, genome: &[u16], fidelity: f64) -> Vec<f64> {
            let mut obj = self.inner.evaluate(genome);
            let noise = (1.0 - fidelity)
                * 0.3
                * ((genome.iter().map(|&g| g as u64).sum::<u64>() * 2_654_435_761 % 97) as f64
                    / 97.0
                    - 0.5);
            for o in obj.iter_mut() {
                *o *= 1.0 + noise;
            }
            obj
        }
    }

    fn problem() -> NoisyProblem<impl Fn(&[u16]) -> Vec<f64> + Sync> {
        NoisyProblem {
            inner: FnProblem::new(vec![16, 16], 2, |g| {
                let x = g[0] as f64 / 15.0;
                let penalty = g[1] as f64 * 0.08;
                vec![x + penalty, 1.0 - x + penalty]
            }),
        }
    }

    #[test]
    fn halving_reduces_cost_below_exhaustive() {
        let p = problem();
        let result = successive_halving(
            &p,
            &SuccessiveHalvingConfig {
                initial_cohort: 128,
                eta: 2,
                min_fidelity: 0.125,
                seed: 1,
            },
        );
        // Cohorts: 128@.125 + 64@.25 + 32@.5 + 16@1.0 = 16+16+16+16 = 64 eq.
        assert!(
            result.equivalent_full_evaluations < 0.5 * 256.0,
            "cost {} should be well below the 256-point space",
            result.equivalent_full_evaluations
        );
        assert_eq!(result.rung_fidelities, vec![0.125, 0.25, 0.5, 1.0]);
        assert!(!result.survivors.is_empty());
    }

    #[test]
    fn survivors_are_non_dominated_at_full_fidelity() {
        let p = problem();
        let result = successive_halving(&p, &SuccessiveHalvingConfig::default());
        for a in &result.survivors {
            for b in &result.survivors {
                if a.genome != b.genome {
                    assert!(!crate::pareto::dominates(&a.objectives, &b.objectives));
                }
            }
        }
        // Survivor objectives equal true full-fidelity objectives.
        for t in &result.survivors {
            assert_eq!(t.objectives, p.evaluate(&t.genome));
        }
    }

    #[test]
    fn finds_good_genomes_despite_low_fidelity_noise() {
        let p = problem();
        let result = successive_halving(
            &p,
            &SuccessiveHalvingConfig {
                initial_cohort: 200,
                eta: 2,
                min_fidelity: 0.25,
                seed: 3,
            },
        );
        // The true front lives at g1 = 0; most survivors should have g1 <= 2.
        let clean = result.survivors.iter().filter(|t| t.genome[1] <= 2).count();
        assert!(
            clean * 2 >= result.survivors.len(),
            "only {clean}/{} survivors near the true front",
            result.survivors.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let cfg = SuccessiveHalvingConfig {
            seed: 9,
            ..SuccessiveHalvingConfig::default()
        };
        let a = successive_halving(&p, &cfg);
        let b = successive_halving(&p, &cfg);
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(a.equivalent_full_evaluations, b.equivalent_full_evaluations);
    }

    #[test]
    fn full_fidelity_start_is_single_rung() {
        let p = problem();
        let result = successive_halving(
            &p,
            &SuccessiveHalvingConfig {
                initial_cohort: 32,
                eta: 2,
                min_fidelity: 1.0,
                seed: 2,
            },
        );
        assert_eq!(result.rung_fidelities, vec![1.0]);
        assert_eq!(result.raw_evaluations, 32);
        assert!((result.equivalent_full_evaluations - 32.0).abs() < 1e-12);
    }

    #[test]
    fn constrained_survivors_are_feasible() {
        // Constraint: g0 <= 7. Low-fidelity rungs prune on objectives
        // alone, but the final rung records violations, so no
        // cap-breaking genome may reach the survivor front while any
        // feasible genome was evaluated at full fidelity.
        let p = NoisyProblem {
            inner: FnProblem::new(vec![16, 16], 2, |g| {
                let x = g[0] as f64 / 15.0;
                let penalty = g[1] as f64 * 0.08;
                vec![x + penalty, 1.0 - x + penalty]
            })
            .with_constraints(1, |g| vec![(g[0] as f64 - 7.0).max(0.0)]),
        };
        let result = successive_halving(
            &p,
            &SuccessiveHalvingConfig {
                initial_cohort: 128,
                eta: 2,
                min_fidelity: 0.25,
                seed: 4,
            },
        );
        assert!(result
            .full_fidelity_history
            .iter()
            .any(|t| t.genome[0] <= 7));
        assert!(!result.survivors.is_empty());
        for t in &result.survivors {
            assert!(t.is_feasible(), "cap-breaking survivor: {t:?}");
            assert!(t.genome[0] <= 7);
        }
    }

    #[test]
    #[should_panic(expected = "eta must be at least 2")]
    fn eta_one_panics() {
        successive_halving(
            &problem(),
            &SuccessiveHalvingConfig {
                eta: 1,
                ..SuccessiveHalvingConfig::default()
            },
        );
    }
}

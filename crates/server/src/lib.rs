#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-server
//!
//! The optimization-as-a-service daemon: a long-lived server that keeps
//! prepared sites hot in a shared [`PreparedCache`], accepts study
//! requests over a newline-delimited JSON protocol, multiplexes
//! concurrent NSGA-II studies over the shared batch engine, and streams
//! incremental front updates plus a final result frame per request.
//! Like `mgopt-telemetry`, this crate is std-only: transports are plain
//! `Read`/`Write` (TCP, stdin/stdout, or the in-process [`pipe`]), and
//! concurrency is `std::thread` + scoped workers.
//!
//! ## Wire format
//!
//! Frame types, the strict-reject parser, and the versioning rule live in
//! [`mgopt_core::wire`]; the daemon adds only transport behavior:
//!
//! * One request per line (`\n`-terminated), one response per line.
//!   Blank lines are ignored.
//! * Every response echoes the request's `id`; frames belonging to
//!   different studies interleave freely on the wire, so a client
//!   multiplexes concurrent studies over one connection by `id`.
//! * A study answers an optional `Queued` (only when the process-wide
//!   concurrency cap is saturated and the study waits for admission),
//!   then `Accepted` → zero or more `Front` updates (when `stream` is
//!   set, one per NSGA-II generation) → exactly one terminal frame:
//!   `Done`, `Cancelled`, or `Error`. Malformed requests, unknown
//!   presets, and infeasible caps are structured errors, never a crash
//!   or disconnect.
//! * `Cancel` names an in-flight study's request id; the study stops
//!   cooperatively at its next generation boundary and answers
//!   `Cancelled` on the *target* id (a study cancelled while still
//!   queued answers `Cancelled` once it reaches the head of the queue,
//!   without running). A cancelled study never also answers `Done`.
//!   Cancelling an id nothing is in flight under (unknown, finished,
//!   or already cancelled) answers an `UnknownStudy` error on the
//!   cancel frame's own id. A client disconnect (EOF) cancels every
//!   study still in flight on that connection — the daemon does not
//!   compute fronts nobody will read.
//! * **Versioning rule** (see [`mgopt_core::wire::WIRE_VERSION`]):
//!   parsing is strict-reject, so any added or removed field in the
//!   envelope, study body, or budget bumps the protocol version; frames
//!   carrying any other version are answered with an
//!   `UnsupportedVersion` error. New externally tagged request/response
//!   variants (`Cancel`, `Queued`, `Cancelled`) are additive and do not
//!   bump it — every old frame still parses byte-identically.
//! * A request line longer than [`ServerConfig::max_frame_bytes`] is
//!   answered with an `Oversized` error; the rest of the line is
//!   discarded and the connection keeps serving from the next newline.
//! * `Ping` answers `Pong`; `Shutdown` stops reading, drains in-flight
//!   studies, answers `Bye`, and closes the connection (and, under
//!   [`Server::serve_tcp`], stops the accept loop).
//!
//! ## Concurrency model
//!
//! [`Server::serve_tcp`] accepts connections concurrently — one thread
//! per connection, at most [`ServerConfig::max_acceptors`] at once
//! (further clients wait in the listen backlog). Studies run on scoped
//! worker threads admitted by one **process-wide** semaphore: at most
//! [`ServerConfig::max_concurrent`] studies are in flight across *all*
//! connections, and a study that must wait is reported to its client
//! with a `Queued` frame (carrying how many studies are ahead) instead
//! of blocking the connection's read loop — so `Ping` and `Cancel`
//! stay responsive while studies queue. Prepared sites come from the
//! shared [`PreparedCache`] keyed by the full scenario config, so
//! concurrent studies over the same sites share one
//! `Arc<PreparedScenario>` and never re-prepare. Search results depend
//! only on `(fleet, budget, seed)` — never on interleaving, queueing,
//! or which connection carried the request — because evaluation is
//! re-entrant over shared read-only data and every study owns its
//! seeded RNG.
//!
//! ## Environment knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `MGOPT_SERVER_ADDR` | `mgopt_serve` binds this TCP address (e.g. `127.0.0.1:0`) instead of serving stdin/stdout. |
//! | `MGOPT_ACCEPTORS` | Max concurrently served TCP connections (default 8). |
//! | `MGOPT_SERVER_CONCURRENCY` | Max in-flight studies across all connections (default 4); studies beyond the cap queue and answer `Queued`. |
//! | `MGOPT_SERVER_CACHE` | Prepared-scenario cache capacity (default 8). |
//! | `MGOPT_SERVER_MAX_FRAME` | Max request-line bytes (default 1048576). |
//! | `MGOPT_TRACE` | Per-study audit log: `server.study` spans, `study_start` / `study_queued` / `study_done` / `study_cancelled` / `request_error` events, `prep_cache.*` counters. |
//!
//! ## Audit log
//!
//! The daemon consumes `mgopt-telemetry` rather than inventing its own
//! observability: each study runs under a `server.study` span, emits
//! `study_start` / `study_done` events (plus `study_queued` when it
//! waits for admission, `study_cancelled` when it stops early, and
//! `request_error` for every error frame), and the prepared cache bumps
//! `prep_cache.hits` / `prep_cache.misses` — all on the `MGOPT_TRACE`
//! JSONL stream, readable with `trace_report`.

pub mod pipe;

use std::collections::BTreeMap;
use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use mgopt_core::problem::FleetProblem;
use mgopt_core::wire::{
    self, ErrorCode, FrontUpdate, PlanPoint, Request, RequestFrame, Response, ResponseFrame,
    StudyAccepted, StudyCancelled, StudyDone, StudyQueued, StudyRequest, WireError, WIRE_VERSION,
};
use mgopt_core::{scenario_key_hash, PreparedCache, PreparedFleet};
use mgopt_optimizer::{GenerationView, Nsga2Config, Nsga2Optimizer, SearchControl};
use mgopt_telemetry::{self as telemetry, Stage};
use serde::Value;

/// Per-connection map from in-flight study id to its cancel token. An
/// entry exists from request admission until the study's terminal frame;
/// `Cancel` flips the token, and retiring the entry and reading the token
/// under one lock makes cancel-vs-completion race-free.
type CancelRegistry = Mutex<BTreeMap<String, Arc<AtomicBool>>>;

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum in-flight studies across **all** connections (minimum 1).
    /// Additional study requests wait in the process-wide admission
    /// queue; their clients are told with a `Queued` frame while the
    /// connection's read loop stays responsive.
    pub max_concurrent: usize,
    /// Maximum concurrently served TCP connections under
    /// [`Server::serve_tcp`] (minimum 1). Further clients wait in the
    /// listen backlog until a connection slot frees.
    pub max_acceptors: usize,
    /// Prepared-scenario cache capacity (minimum 1).
    pub cache_capacity: usize,
    /// Maximum request-line length in bytes; longer lines are answered
    /// with an `Oversized` error frame and discarded.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_concurrent: 4,
            max_acceptors: 8,
            cache_capacity: 8,
            max_frame_bytes: 1 << 20,
        }
    }
}

impl ServerConfig {
    /// Read the `MGOPT_SERVER_*` / `MGOPT_ACCEPTORS` knobs (see the crate
    /// docs), falling back to defaults. Returns a usage-style message on
    /// an unparsable value.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = Self::default();
        if let Some(v) = env_usize("MGOPT_SERVER_CONCURRENCY")? {
            cfg.max_concurrent = v;
        }
        if let Some(v) = env_usize("MGOPT_ACCEPTORS")? {
            cfg.max_acceptors = v;
        }
        if let Some(v) = env_usize("MGOPT_SERVER_CACHE")? {
            cfg.cache_capacity = v;
        }
        if let Some(v) = env_usize("MGOPT_SERVER_MAX_FRAME")? {
            cfg.max_frame_bytes = v;
        }
        Ok(cfg)
    }
}

fn env_usize(name: &str) -> Result<Option<usize>, String> {
    match std::env::var(name) {
        Ok(s) if !s.is_empty() => s
            .parse::<usize>()
            .map(|v| Some(v.max(1)))
            .map_err(|_| format!("{name}={s}: expected a positive integer")),
        _ => Ok(None),
    }
}

/// Why [`Server::serve_connection`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionOutcome {
    /// The client closed its write side; all in-flight studies drained.
    Eof,
    /// The client sent `Shutdown`; in-flight studies drained, `Bye` sent.
    Shutdown,
}

/// The daemon: shared prepared cache + per-connection protocol loop.
///
/// `Server` is `&self`-re-entrant: several connections can be served
/// concurrently (one thread each, all sharing the cache), and each
/// connection multiplexes up to [`ServerConfig::max_concurrent`] studies.
pub struct Server {
    config: ServerConfig,
    cache: Arc<PreparedCache>,
    limiter: Limiter,
    studies_done: AtomicU64,
    studies_cancelled: AtomicU64,
}

impl Server {
    /// Create a daemon with its own prepared cache.
    pub fn new(config: ServerConfig) -> Self {
        let cache = Arc::new(PreparedCache::new(config.cache_capacity));
        Self::with_cache(config, cache)
    }

    /// Create a daemon over an existing (possibly shared) cache.
    pub fn with_cache(config: ServerConfig, cache: Arc<PreparedCache>) -> Self {
        let limiter = Limiter::new(config.max_concurrent.max(1));
        Self {
            config,
            cache,
            limiter,
            studies_done: AtomicU64::new(0),
            studies_cancelled: AtomicU64::new(0),
        }
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared prepared-scenario cache.
    pub fn cache(&self) -> &Arc<PreparedCache> {
        &self.cache
    }

    /// Total studies that reached a terminal frame (`Done`, `Cancelled`,
    /// or an error after admission) across all connections.
    pub fn studies_done(&self) -> u64 {
        self.studies_done.load(Ordering::Relaxed)
    }

    /// Studies that ended with a `Cancelled` frame (explicit `Cancel` or
    /// client disconnect) across all connections. Every cancelled study
    /// also counts in [`studies_done`](Self::studies_done).
    pub fn studies_cancelled(&self) -> u64 {
        self.studies_cancelled.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently in-flight studies (process-wide,
    /// never above [`ServerConfig::max_concurrent`]).
    pub fn peak_in_flight(&self) -> usize {
        self.limiter.peak.load(Ordering::Relaxed)
    }

    /// High-water mark of studies waiting in the admission queue.
    pub fn queue_depth_peak(&self) -> usize {
        self.limiter.queue_peak.load(Ordering::Relaxed)
    }

    /// Serve one connection until EOF or `Shutdown`, blocking the calling
    /// thread. Study workers run on scoped threads and are always joined
    /// before this returns; write failures (e.g. the client disconnected
    /// mid-stream) are swallowed so in-flight studies finish quietly.
    pub fn serve_connection<R, W>(&self, reader: R, writer: W) -> io::Result<ConnectionOutcome>
    where
        R: Read,
        W: Write + Send,
    {
        let mut reader = io::BufReader::new(reader);
        let writer = Mutex::new(writer);
        let registry: CancelRegistry = Mutex::new(BTreeMap::new());
        let outcome = thread::scope(|s| -> io::Result<ConnectionOutcome> {
            let mut buf: Vec<u8> = Vec::new();
            loop {
                match read_bounded_line(&mut reader, self.config.max_frame_bytes, &mut buf)? {
                    LineRead::Eof => {
                        // Disconnect cancels: nobody is left to read the
                        // fronts, so in-flight studies stop at their next
                        // generation boundary instead of running dry.
                        let reg = registry.lock().unwrap_or_else(|e| e.into_inner());
                        for token in reg.values() {
                            token.store(true, Ordering::SeqCst);
                        }
                        return Ok(ConnectionOutcome::Eof);
                    }
                    LineRead::Oversized => {
                        send_error(
                            &writer,
                            "",
                            WireError::new(
                                ErrorCode::Oversized,
                                format!(
                                    "request line exceeds {} bytes; discarded to next newline",
                                    self.config.max_frame_bytes
                                ),
                            ),
                        );
                        drain_line(&mut reader, &mut buf)?;
                    }
                    LineRead::Line(line) => {
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        match wire::parse_request(line) {
                            Err(err) => send_error(&writer, &salvage_id(line), err),
                            Ok(RequestFrame { id, req, .. }) => match req {
                                Request::Ping => send(&writer, &id, Response::Pong),
                                Request::Shutdown => return Ok(ConnectionOutcome::Shutdown),
                                Request::Study(study) => {
                                    self.spawn_study(s, id, study, &writer, &registry);
                                }
                                Request::Cancel(target) => {
                                    handle_cancel(&registry, &id, &target, &writer);
                                }
                            },
                        }
                    }
                }
            }
        })?;
        // The scope joined every worker; the connection is quiet again.
        if outcome == ConnectionOutcome::Shutdown {
            send(&writer, "", Response::Bye);
        }
        Ok(outcome)
    }

    /// Accept loop: serves connections **concurrently** — one scoped
    /// thread per accepted stream, at most
    /// [`ServerConfig::max_acceptors`] at once (further clients wait in
    /// the listen backlog) — until a client sends `Shutdown`. Study
    /// admission stays process-wide: all connections share this daemon's
    /// [`ServerConfig::max_concurrent`] cap. After a `Shutdown`, the
    /// accept loop stops and every already-accepted connection drains
    /// before this returns.
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<()> {
        let local = listener.local_addr()?;
        let shutdown = AtomicBool::new(false);
        let gate = Limiter::new(self.config.max_acceptors.max(1));
        thread::scope(|s| -> io::Result<()> {
            for stream in listener.incoming() {
                let stream = stream?;
                if shutdown.load(Ordering::SeqCst) {
                    // Either the self-connect wake-up or a late client;
                    // drop it and stop accepting.
                    return Ok(());
                }
                let permit = gate.acquire(|_| {});
                let shutdown = &shutdown;
                s.spawn(move || {
                    let _permit = permit;
                    let Ok(reader) = stream.try_clone() else {
                        return;
                    };
                    if let Ok(ConnectionOutcome::Shutdown) = self.serve_connection(reader, stream) {
                        shutdown.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it can observe the
                        // flag; best-effort (a racing real client also
                        // wakes it).
                        let _ = TcpStream::connect(local);
                    }
                    // A torn-down connection must not kill the daemon.
                });
            }
            Ok(())
        })
    }

    /// Validate, register a cancel token, and launch one study worker
    /// immediately — admission against the process-wide concurrency cap
    /// happens *inside* the worker (reporting `Queued` when it must
    /// wait), so the read loop stays responsive to `Ping` and `Cancel`.
    fn spawn_study<'scope, 'env, W: Write + Send>(
        &'env self,
        scope: &'scope thread::Scope<'scope, 'env>,
        id: String,
        study: StudyRequest,
        writer: &'env Mutex<W>,
        registry: &'env CancelRegistry,
    ) where
        'env: 'scope,
    {
        let scenario = match study.resolved_scenario() {
            Ok(s) => s,
            Err(err) => {
                send_error(writer, &id, err);
                return;
            }
        };
        let cancel = Arc::new(AtomicBool::new(false));
        {
            let mut reg = registry.lock().unwrap_or_else(|e| e.into_inner());
            reg.insert(id.clone(), Arc::clone(&cancel));
        }
        scope.spawn(move || {
            let permit = self.limiter.acquire(|ahead| {
                telemetry::Event::new("study_queued")
                    .str("id", &id)
                    .u64("ahead", ahead)
                    .emit();
                send(writer, &id, Response::Queued(StudyQueued { ahead }));
            });
            let _permit = permit;
            let _span = telemetry::span(Stage::ServerStudy);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.run_study(&id, &study, &scenario, writer, &cancel, registry)
            }));
            if outcome.is_err() {
                retire(registry, &id, &cancel);
                send_error(
                    writer,
                    &id,
                    WireError::new(ErrorCode::Internal, "study worker panicked"),
                );
            }
            self.studies_done.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// The study body: cache-shared preparation, `Accepted`, the NSGA-II
    /// run (streaming `Front` frames when asked, stopping at a generation
    /// boundary when cancelled), then the terminal `Done` or `Cancelled`.
    fn run_study<W: Write + Send>(
        &self,
        id: &str,
        study: &StudyRequest,
        scenario: &mgopt_core::FleetScenario,
        writer: &Mutex<W>,
        cancel: &AtomicBool,
        registry: &CancelRegistry,
    ) {
        let t0 = Instant::now();
        // Cancelled while waiting in the admission queue: answer without
        // preparing or running anything.
        if cancel.load(Ordering::SeqCst) && retire(registry, id, cancel) {
            self.finish_cancelled(id, 0, 0, t0, writer);
            return;
        }
        let (fleet, stats) = scenario.prepare_shared(&self.cache);
        let plan_space = fleet.members.iter().fold(1u64, |acc, m| {
            acc.saturating_mul(m.config.space.len() as u64)
        });
        telemetry::Event::new("study_start")
            .str("id", id)
            .u64("sites", fleet.n_sites() as u64)
            .u64("plan_space", plan_space)
            .u64("prep_hits", u64::from(stats.hits))
            .u64("prep_misses", u64::from(stats.misses))
            .u64(
                "fleet_key",
                scenario
                    .members
                    .first()
                    .map_or(0, |m| scenario_key_hash(&m.scenario)),
            )
            .emit();
        send(
            writer,
            id,
            Response::Accepted(StudyAccepted {
                sites: fleet.names.clone(),
                plan_space,
                prep_cache_hits: stats.hits,
                prep_cache_misses: stats.misses,
            }),
        );

        let mut problem = FleetProblem::new(&fleet);
        if let Some(cap) = study.peak_cap_kw {
            problem = problem.with_peak_cap_kw(cap);
        }
        let optimizer = Nsga2Optimizer::new(Nsga2Config {
            population_size: study.budget.population_size,
            max_trials: study.budget.max_trials,
            seed: study.budget.seed,
            ..Nsga2Config::default()
        });

        let stream = study.stream;
        let mut generations = 0u32;
        let mut last_front: Vec<PlanPoint> = Vec::new();
        let result = optimizer.run_controlled(&problem, &mut |view: GenerationView| {
            generations = view.generation as u32 + 1;
            last_front = view
                .front
                .iter()
                .map(|(genome, eval)| PlanPoint {
                    genome: genome.clone(),
                    plan: plan_of(&fleet, genome),
                    objectives: eval.objectives.clone(),
                    violation: eval.total_violation(),
                })
                .collect();
            if cancel.load(Ordering::Relaxed) {
                // Stop at this generation boundary; skip the front the
                // client no longer wants.
                return SearchControl::Stop;
            }
            if stream {
                send(
                    writer,
                    id,
                    Response::Front(FrontUpdate {
                        generation: view.generation as u32,
                        sampled: view.sampled as u64,
                        front: last_front.clone(),
                    }),
                );
            }
            SearchControl::Continue
        });

        // Retiring the registry entry and reading the token under one
        // lock decides the race against a concurrent `Cancel`: either
        // the cancel saw the entry (this study answers `Cancelled`), or
        // it did not (it answered `UnknownStudy` and this study answers
        // `Done`). Never both.
        if retire(registry, id, cancel) {
            self.finish_cancelled(id, generations, result.sampled_trials as u64, t0, writer);
            return;
        }

        telemetry::Event::new("study_done")
            .str("id", id)
            .u64("generations", u64::from(generations))
            .u64("sampled", result.sampled_trials as u64)
            .u64("unique", result.unique_evaluations as u64)
            .u64("front", last_front.len() as u64)
            .f64("wall_ms", t0.elapsed().as_secs_f64() * 1e3)
            .emit();
        send(
            writer,
            id,
            Response::Done(StudyDone {
                generations,
                sampled_trials: result.sampled_trials as u64,
                unique_evaluations: result.unique_evaluations as u64,
                cache_hits: result.cache_hits as u64,
                cache_misses: result.cache_misses as u64,
                wall_ms: t0.elapsed().as_millis() as u64,
                front: last_front,
            }),
        );
    }

    /// Emit the audit event and the terminal `Cancelled` frame for a
    /// study that stopped early.
    fn finish_cancelled<W: Write>(
        &self,
        id: &str,
        generations: u32,
        sampled: u64,
        t0: Instant,
        writer: &Mutex<W>,
    ) {
        self.studies_cancelled.fetch_add(1, Ordering::Relaxed);
        telemetry::Event::new("study_cancelled")
            .str("id", id)
            .u64("generations", u64::from(generations))
            .u64("sampled", sampled)
            .f64("wall_ms", t0.elapsed().as_secs_f64() * 1e3)
            .emit();
        send(
            writer,
            id,
            Response::Cancelled(StudyCancelled {
                generations,
                sampled_trials: sampled,
                wall_ms: t0.elapsed().as_millis() as u64,
            }),
        );
    }
}

/// Handle a `Cancel` frame: flip the target's token if it is in flight
/// (the acknowledgement is the eventual `Cancelled` frame on the target
/// id), else answer `UnknownStudy` on the cancel frame's own id.
fn handle_cancel<W: Write>(registry: &CancelRegistry, id: &str, target: &str, writer: &Mutex<W>) {
    let found = {
        let reg = registry.lock().unwrap_or_else(|e| e.into_inner());
        match reg.get(target) {
            Some(token) => {
                token.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    };
    if !found {
        send_error(
            writer,
            id,
            WireError::new(
                ErrorCode::UnknownStudy,
                format!("no in-flight study `{target}` on this connection"),
            ),
        );
    }
}

/// Retire a study's registry entry and report whether it was cancelled.
/// Removal and the token read happen under the registry lock, so a
/// concurrent `Cancel` either saw the entry (this returns true) or will
/// answer `UnknownStudy` — the client never sees `Cancelled` *and*
/// `Done` for one id.
fn retire(registry: &CancelRegistry, id: &str, cancel: &AtomicBool) -> bool {
    let mut reg = registry.lock().unwrap_or_else(|e| e.into_inner());
    reg.remove(id);
    cancel.load(Ordering::SeqCst)
}

/// Decode one genome into its fleet plan.
fn plan_of(fleet: &PreparedFleet, genome: &[u16]) -> Vec<mgopt_microgrid::Composition> {
    genome
        .iter()
        .zip(&fleet.members)
        .map(|(&g, m)| m.config.space.at(g as usize))
        .collect()
}

/// Best-effort extraction of the `id` from a line that failed strict
/// parsing, so the error frame can still be correlated.
fn salvage_id(line: &str) -> String {
    serde_json::from_str::<Value>(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_default()
}

fn send<W: Write>(writer: &Mutex<W>, id: &str, resp: Response) {
    let frame = ResponseFrame {
        v: WIRE_VERSION,
        id: id.to_string(),
        resp,
    };
    let line = wire::encode_response(&frame);
    // A panicked writer-holder must not wedge every other study on the
    // connection: adopt the poisoned lock and keep answering.
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    // Swallow write errors: a client that disconnected mid-stream must not
    // tear down other studies on this connection.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

fn send_error<W: Write>(writer: &Mutex<W>, id: &str, err: WireError) {
    telemetry::Event::new("request_error")
        .str("id", id)
        .str("code", &format!("{:?}", err.code))
        .str("message", &err.message)
        .emit();
    send(writer, id, Response::Error(err));
}

/// Result of one bounded line read.
enum LineRead {
    /// A complete line (newline stripped).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the frame limit before its newline.
    Oversized,
}

/// Read one `\n`-terminated line of at most `max` bytes. On `Oversized`,
/// the overlong prefix has been consumed but the rest of the line has
/// not — callers resynchronize with [`drain_line`].
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max: usize,
    buf: &mut Vec<u8>,
) -> io::Result<LineRead> {
    buf.clear();
    let n = reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() != Some(&b'\n') && n > max {
        return Ok(LineRead::Oversized);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    match std::str::from_utf8(buf) {
        Ok(s) => Ok(LineRead::Line(s.to_string())),
        // Deliver undecodable bytes as a lossy line; the JSON parser turns
        // it into a MalformedFrame error.
        Err(_) => Ok(LineRead::Line(String::from_utf8_lossy(buf).into_owned())),
    }
}

/// Discard input up to and including the next newline (or EOF).
fn drain_line<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> io::Result<()> {
    loop {
        buf.clear();
        let n = reader.by_ref().take(4096).read_until(b'\n', buf)?;
        if n == 0 || buf.last() == Some(&b'\n') {
            return Ok(());
        }
    }
}

/// A counting semaphore that records its high-water mark and the depth
/// of its wait queue.
struct Limiter {
    max: usize,
    state: Mutex<LimiterState>,
    cv: Condvar,
    peak: AtomicUsize,
    queue_peak: AtomicUsize,
}

#[derive(Default)]
struct LimiterState {
    in_flight: usize,
    waiting: usize,
}

struct Permit<'a>(&'a Limiter);

impl Limiter {
    fn new(max: usize) -> Self {
        Self {
            max,
            state: Mutex::new(LimiterState::default()),
            cv: Condvar::new(),
            peak: AtomicUsize::new(0),
            queue_peak: AtomicUsize::new(0),
        }
    }

    /// Acquire one slot. If the caller must wait (the cap is saturated,
    /// or earlier arrivals are already waiting), `queued` is invoked
    /// exactly once — outside the lock — with the number of holders and
    /// waiters ahead, before blocking.
    fn acquire(&self, queued: impl FnOnce(u64)) -> Permit<'_> {
        // The guarded state is a plain counter pair, valid even if a
        // holder panicked — adopt poisoned locks rather than propagating.
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.in_flight >= self.max || st.waiting > 0 {
            let ahead = (st.in_flight + st.waiting) as u64;
            st.waiting += 1;
            self.queue_peak.fetch_max(st.waiting, Ordering::Relaxed);
            drop(st);
            queued(ahead);
            st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.in_flight >= self.max {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.waiting -= 1;
        }
        st.in_flight += 1;
        self.peak.fetch_max(st.in_flight, Ordering::Relaxed);
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        st.in_flight -= 1;
        self.0.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limiter_caps_and_records_peak() {
        let limiter = Limiter::new(2);
        let a = limiter.acquire(|_| panic!("should not queue"));
        let b = limiter.acquire(|_| panic!("should not queue"));
        assert_eq!(limiter.peak.load(Ordering::Relaxed), 2);
        drop(a);
        let c = limiter.acquire(|_| panic!("should not queue"));
        assert_eq!(limiter.peak.load(Ordering::Relaxed), 2);
        drop(b);
        drop(c);
        assert_eq!(limiter.state.lock().unwrap().in_flight, 0);
        assert_eq!(limiter.queue_peak.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn limiter_reports_queueing_and_queue_depth() {
        let limiter = Limiter::new(1);
        let held = limiter.acquire(|_| panic!("cap is free"));
        let (queued_ahead, permit) = thread::scope(|s| {
            let waiter = s.spawn(|| {
                let mut ahead = None;
                let permit = limiter.acquire(|a| ahead = Some(a));
                (ahead, permit)
            });
            // Give the waiter time to announce itself, then free the slot.
            while limiter.queue_peak.load(Ordering::Relaxed) == 0 {
                thread::yield_now();
            }
            drop(held);
            let (ahead, permit) = waiter.join().unwrap();
            (ahead, permit)
        });
        assert_eq!(queued_ahead, Some(1), "one holder was ahead");
        assert_eq!(limiter.queue_peak.load(Ordering::Relaxed), 1);
        drop(permit);
        assert_eq!(limiter.state.lock().unwrap().in_flight, 0);
        assert_eq!(limiter.state.lock().unwrap().waiting, 0);
    }

    #[test]
    fn bounded_reader_flags_oversized_and_recovers() {
        let input = b"short\n0123456789abcdef_way_too_long\nnext\n";
        let mut r = io::BufReader::new(&input[..]);
        let mut buf = Vec::new();
        assert!(matches!(
            read_bounded_line(&mut r, 10, &mut buf).unwrap(),
            LineRead::Line(s) if s == "short"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 10, &mut buf).unwrap(),
            LineRead::Oversized
        ));
        drain_line(&mut r, &mut buf).unwrap();
        assert!(matches!(
            read_bounded_line(&mut r, 10, &mut buf).unwrap(),
            LineRead::Line(s) if s == "next"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 10, &mut buf).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn salvage_id_best_effort() {
        assert_eq!(salvage_id(r#"{"v":9,"id":"abc","req":"Nope"}"#), "abc");
        assert_eq!(salvage_id("not json"), "");
        assert_eq!(salvage_id(r#"{"id":7}"#), "");
    }

    /// Compile-time pin: one `Server` must be shareable across connection
    /// and study threads (`&self`-re-entrant serving).
    #[test]
    fn server_is_send_and_sync() {
        fn sharable<T: Send + Sync>() {}
        sharable::<Server>();
        sharable::<Arc<Server>>();
    }

    #[test]
    fn config_from_env_defaults() {
        // No MGOPT_SERVER_* set in the test environment.
        let cfg = ServerConfig::from_env().unwrap();
        assert_eq!(cfg, ServerConfig::default());
    }
}

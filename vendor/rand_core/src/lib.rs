//! Workspace-local stand-in for the `rand_core` crate.
//!
//! [`SeedableRng::seed_from_u64`] reproduces upstream's documented
//! splitmix64 seed expansion so generators seeded the same way produce the
//! same streams as they would with the real crate family.

/// A source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Create from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create from a `u64`, expanding with splitmix64 (upstream-compatible).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy([u8; 8]);

    impl SeedableRng for Dummy {
        type Seed = [u8; 8];

        fn from_seed(seed: [u8; 8]) -> Self {
            Dummy(seed)
        }
    }

    impl RngCore for Dummy {
        fn next_u32(&mut self) -> u32 {
            u32::from_le_bytes(self.0[..4].try_into().unwrap())
        }

        fn next_u64(&mut self) -> u64 {
            u64::from_le_bytes(self.0)
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let a = Dummy::seed_from_u64(1).0;
        let b = Dummy::seed_from_u64(1).0;
        let c = Dummy::seed_from_u64(2).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 8]);
    }

    #[test]
    fn fill_bytes_covers_odd_lengths() {
        let mut d = Dummy::seed_from_u64(3);
        let mut buf = [0u8; 11];
        d.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! The composition space as an optimizer [`Problem`].
//!
//! Scalar evaluations go through the reference [`simulate_year`] path;
//! cohort evaluations override [`Problem::evaluate_batch`] /
//! [`MultiFidelityProblem::evaluate_batch_at_fidelity`] with the columnar
//! [`BatchEvaluator`], so NSGA-II generations, exhaustive sweeps, random
//! cohorts and successive-halving rungs are each a single time-major pass
//! over the site data.
//!
//! [`FleetProblem`] is the multi-site analogue: the genome assigns one
//! composition *index* per fleet member, cohorts route through a single
//! interleaved [`FleetEvaluator`] pass, and an optional cap on the fleet's
//! peak concurrent grid import becomes a first-class constraint handled by
//! NSGA-II's constraint-dominance.

use mgopt_microgrid::{
    simulate_period, simulate_year, BatchBackend, BatchEvaluator, Composition, CompositionSpace,
    Evaluator, FleetEvaluator, FleetResult,
};
use mgopt_optimizer::{Evaluation, Genome, MultiFidelityProblem, Problem};

use crate::fleet::PreparedFleet;
use crate::objectives::ObjectiveSet;
use crate::scenario::PreparedScenario;

/// Adapts a prepared scenario to the optimizer's problem interface.
///
/// Genome layout: `[wind index, solar index, battery index]` into the
/// scenario's [`CompositionSpace`] choice lists.
pub struct CompositionProblem<'a> {
    scenario: &'a PreparedScenario,
    objectives: ObjectiveSet,
    dims: Vec<usize>,
}

impl<'a> CompositionProblem<'a> {
    /// Create a problem over the scenario's space and objective set.
    pub fn new(scenario: &'a PreparedScenario, objectives: ObjectiveSet) -> Self {
        let space = &scenario.config.space;
        let dims = vec![
            space.wind_choices.len(),
            space.solar_choices_kw.len(),
            space.battery_choices_kwh.len(),
        ];
        assert!(!objectives.is_empty(), "at least one objective required");
        Self {
            scenario,
            objectives,
            dims,
        }
    }

    /// The composition encoded by a genome.
    pub fn composition(&self, genome: &[u16]) -> Composition {
        let space = &self.scenario.config.space;
        Composition::new(
            space.wind_choices[genome[0] as usize],
            space.solar_choices_kw[genome[1] as usize],
            space.battery_choices_kwh[genome[2] as usize],
        )
    }

    /// Genome encoding a composition (must lie on the grid).
    pub fn genome_of(&self, c: &Composition) -> Option<Vec<u16>> {
        let space = &self.scenario.config.space;
        let w = space
            .wind_choices
            .iter()
            .position(|&x| x == c.wind_turbines)?;
        let s = space
            .solar_choices_kw
            .iter()
            .position(|&x| (x - c.solar_kw).abs() < 1e-9)?;
        let b = space
            .battery_choices_kwh
            .iter()
            .position(|&x| (x - c.battery_kwh).abs() < 1e-9)?;
        Some(vec![w as u16, s as u16, b as u16])
    }

    /// The underlying space.
    pub fn space(&self) -> &CompositionSpace {
        &self.scenario.config.space
    }

    /// The objective set.
    pub fn objective_set(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// The batched engine over this scenario's prepared inputs.
    pub fn evaluator(&self) -> BatchEvaluator<'_> {
        BatchEvaluator::new(
            &self.scenario.data,
            &self.scenario.load,
            &self.scenario.config.sim,
        )
    }

    /// The number of simulated steps for a fidelity in `(0, 1]`.
    fn steps_for_fidelity(&self, fidelity: f64) -> usize {
        ((self.scenario.data.len() as f64 * fidelity).round() as usize)
            .clamp(1, self.scenario.data.len())
    }
}

impl Problem for CompositionProblem<'_> {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn n_objectives(&self) -> usize {
        self.objectives.len()
    }

    fn evaluate(&self, genome: &[u16]) -> Vec<f64> {
        let comp = self.composition(genome);
        let result = simulate_year(
            &self.scenario.data,
            &self.scenario.load,
            &comp,
            &self.scenario.config.sim,
        );
        self.objectives.extract(&result)
    }

    fn evaluate_batch(&self, genomes: &[Genome]) -> Vec<Vec<f64>> {
        let comps: Vec<Composition> = genomes.iter().map(|g| self.composition(g)).collect();
        self.evaluator()
            .evaluate_batch(&comps)
            .iter()
            .map(|r| self.objectives.extract(r))
            .collect()
    }
}

impl MultiFidelityProblem for CompositionProblem<'_> {
    /// Low fidelity = simulate only the first `fidelity` fraction of the
    /// year. Rates are period-normalized, so low-fidelity objectives are
    /// noisy (seasonal bias) but unbiased enough for pruning.
    fn evaluate_at_fidelity(&self, genome: &[u16], fidelity: f64) -> Vec<f64> {
        let comp = self.composition(genome);
        let result = simulate_period(
            &self.scenario.data,
            &self.scenario.load,
            &comp,
            &self.scenario.config.sim,
            self.steps_for_fidelity(fidelity),
        );
        self.objectives.extract(&result)
    }

    fn evaluate_batch_at_fidelity(&self, genomes: &[Genome], fidelity: f64) -> Vec<Vec<f64>> {
        let comps: Vec<Composition> = genomes.iter().map(|g| self.composition(g)).collect();
        self.evaluator()
            .evaluate_batch_period(&comps, self.steps_for_fidelity(fidelity))
            .iter()
            .map(|r| self.objectives.extract(r))
            .collect()
    }
}

/// A whole fleet plan as an optimizer [`Problem`]: one dimension per fleet
/// member, each gene the flat index into that member's
/// [`CompositionSpace`] — NSGA-II searches the cross-product plan space
/// directly instead of one site at a time.
///
/// Objectives are fixed to the paper pair lifted to the fleet account:
/// `[fleet operational tCO2/day, total embodied tCO2]`. An optional
/// [peak concurrent grid-import cap](Self::with_peak_cap_kw) adds one
/// constraint whose violation is the exceedance in kW; samplers handle it
/// via constraint-dominance, so every feasible plan outranks every
/// cap-breaking one.
///
/// Cohorts evaluate in a **single interleaved pass** per generation
/// through [`FleetEvaluator::evaluate_plans`]; peak tracking is only
/// enabled when a cap is set, so unconstrained searches do exactly the
/// work of independent per-site batch sweeps.
pub struct FleetProblem<'a> {
    fleet: &'a PreparedFleet,
    dims: Vec<usize>,
    peak_cap_kw: Option<f64>,
    backend: BatchBackend,
}

impl<'a> FleetProblem<'a> {
    /// Number of fleet objectives (operational tCO2/day, embodied tCO2).
    pub const N_OBJECTIVES: usize = 2;

    /// Create a problem over a prepared fleet's member spaces.
    ///
    /// # Panics
    /// Panics when a member's composition space is empty or larger than a
    /// `u16` gene can index.
    pub fn new(fleet: &'a PreparedFleet) -> Self {
        let dims: Vec<usize> = fleet
            .members
            .iter()
            .zip(&fleet.names)
            .map(|(m, name)| {
                let n = m.config.space.len();
                assert!(n >= 1, "member {name}: empty composition space");
                assert!(
                    n <= u16::MAX as usize + 1,
                    "member {name}: {n} compositions exceed the u16 genome"
                );
                n
            })
            .collect();
        Self {
            fleet,
            dims,
            peak_cap_kw: None,
            backend: BatchBackend::Auto,
        }
    }

    /// Force a chunk-walk backend on the underlying fleet engine (default:
    /// follow the `MGOPT_SIMD` toggle). The walks are pinned bit-identical,
    /// so search trajectories do not depend on the choice; benches use this
    /// for like-for-like A/B timing.
    pub fn with_backend(mut self, backend: BatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Constrain the fleet's peak *concurrent* grid import to `cap_kw`.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite cap.
    pub fn with_peak_cap_kw(mut self, cap_kw: f64) -> Self {
        assert!(
            cap_kw.is_finite() && cap_kw > 0.0,
            "peak import cap must be positive and finite"
        );
        self.peak_cap_kw = Some(cap_kw);
        self
    }

    /// The configured peak-import cap, kW, if any.
    pub fn peak_cap_kw(&self) -> Option<f64> {
        self.peak_cap_kw
    }

    /// The underlying prepared fleet.
    pub fn fleet(&self) -> &PreparedFleet {
        self.fleet
    }

    /// The fleet plan a genome encodes (one composition per site).
    pub fn plan(&self, genome: &[u16]) -> Vec<Composition> {
        assert_eq!(genome.len(), self.dims.len());
        genome
            .iter()
            .zip(&self.fleet.members)
            .map(|(&g, m)| m.config.space.at(g as usize))
            .collect()
    }

    /// Genome encoding a plan (every composition must lie on its member's
    /// grid).
    pub fn genome_of_plan(&self, plan: &[Composition]) -> Option<Genome> {
        if plan.len() != self.fleet.members.len() {
            return None;
        }
        plan.iter()
            .zip(&self.fleet.members)
            .map(|(c, m)| m.config.space.index_of(c).map(|i| i as u16))
            .collect()
    }

    /// The interleaved engine over the fleet's prepared inputs — peak
    /// tracking only when the cap needs it.
    pub fn evaluator(&self) -> FleetEvaluator<'_> {
        self.fleet
            .evaluator()
            .with_peak_tracking(self.peak_cap_kw.is_some())
            .with_backend(self.backend)
    }

    fn evaluation_of(&self, result: &FleetResult) -> Evaluation {
        Evaluation {
            objectives: vec![result.fleet.operational_t_per_day, result.fleet.embodied_t],
            violations: match self.peak_cap_kw {
                Some(cap) => vec![result.fleet.peak_cap_violation_kw(cap)],
                None => Vec::new(),
            },
        }
    }

    fn evaluate_plans(&self, genomes: &[Genome]) -> Vec<Evaluation> {
        let plans: Vec<Vec<Composition>> = genomes.iter().map(|g| self.plan(g)).collect();
        self.evaluator()
            .evaluate_plans(&plans)
            .iter()
            .map(|r| self.evaluation_of(r))
            .collect()
    }
}

impl Problem for FleetProblem<'_> {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn n_objectives(&self) -> usize {
        Self::N_OBJECTIVES
    }

    fn n_constraints(&self) -> usize {
        usize::from(self.peak_cap_kw.is_some())
    }

    fn evaluate(&self, genome: &[u16]) -> Vec<f64> {
        self.evaluate_constrained(genome).objectives
    }

    fn evaluate_constrained(&self, genome: &[u16]) -> Evaluation {
        self.evaluation_of(&self.evaluator().evaluate(&self.plan(genome)))
    }

    fn evaluate_batch(&self, genomes: &[Genome]) -> Vec<Vec<f64>> {
        self.evaluate_plans(genomes)
            .into_iter()
            .map(|e| e.objectives)
            .collect()
    }

    fn evaluate_batch_constrained(&self, genomes: &[Genome]) -> Vec<Evaluation> {
        self.evaluate_plans(genomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    fn scenario() -> PreparedScenario {
        ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare()
    }

    #[test]
    fn dims_match_space() {
        let s = scenario();
        let p = CompositionProblem::new(&s, ObjectiveSet::paper());
        assert_eq!(p.dims(), &[3, 3, 3]);
        assert_eq!(p.space_size(), 27);
        assert_eq!(p.n_objectives(), 2);
    }

    #[test]
    fn genome_composition_round_trip() {
        let s = scenario();
        let p = CompositionProblem::new(&s, ObjectiveSet::paper());
        for i in 0..p.space_size() {
            let g = p.genome_at(i);
            let c = p.composition(&g);
            assert_eq!(p.genome_of(&c), Some(g));
        }
    }

    #[test]
    fn evaluation_matches_direct_simulation() {
        let s = scenario();
        let p = CompositionProblem::new(&s, ObjectiveSet::paper());
        let genome = vec![1u16, 1, 1];
        let comp = p.composition(&genome);
        let direct = simulate_year(&s.data, &s.load, &comp, &s.config.sim);
        assert_eq!(p.evaluate(&genome), ObjectiveSet::paper().extract(&direct));
    }

    #[test]
    fn baseline_genome_has_zero_embodied() {
        let s = scenario();
        let p = CompositionProblem::new(&s, ObjectiveSet::paper());
        let obj = p.evaluate(&[0, 0, 0]);
        assert_eq!(obj[1], 0.0, "embodied of baseline");
        assert!(obj[0] > 10.0, "houston baseline emissions");
    }

    mod fleet {
        use super::*;
        use crate::fleet::FleetScenario;

        fn tiny_fleet() -> crate::fleet::PreparedFleet {
            let mut f = FleetScenario::paper();
            for m in &mut f.members {
                m.scenario.space = CompositionSpace::tiny();
            }
            f.prepare()
        }

        #[test]
        fn dims_are_member_space_sizes() {
            let fleet = tiny_fleet();
            let p = FleetProblem::new(&fleet);
            assert_eq!(p.dims(), &[27, 27]);
            assert_eq!(p.space_size(), 27 * 27);
            assert_eq!(p.n_objectives(), 2);
            assert_eq!(p.n_constraints(), 0);
        }

        #[test]
        fn genome_plan_round_trip() {
            let fleet = tiny_fleet();
            let p = FleetProblem::new(&fleet);
            for i in [0usize, 1, 26, 27, 300, 728] {
                let g = p.genome_at(i);
                let plan = p.plan(&g);
                assert_eq!(p.genome_of_plan(&plan), Some(g));
            }
            // Off-grid plans have no genome.
            let odd = vec![Composition::new(1, 1.0, 0.0); 2];
            assert_eq!(p.genome_of_plan(&odd), None);
        }

        #[test]
        fn scalar_and_batch_agree_with_fleet_engine() {
            let fleet = tiny_fleet();
            let p = FleetProblem::new(&fleet);
            let genomes = vec![vec![0u16, 0], vec![5, 20], vec![26, 26]];
            let batch = p.evaluate_batch(&genomes);
            for (g, obj) in genomes.iter().zip(&batch) {
                assert_eq!(&p.evaluate(g), obj, "genome {g:?}");
                let direct = fleet.evaluator().evaluate(&p.plan(g));
                assert_eq!(obj[0], direct.fleet.operational_t_per_day);
                assert_eq!(obj[1], direct.fleet.embodied_t);
            }
        }

        #[test]
        fn peak_cap_becomes_a_constraint_violation() {
            let fleet = tiny_fleet();
            let genome = vec![0u16, 0]; // all-baseline plan: pure grid import
            let unconstrained = FleetProblem::new(&fleet);
            assert!(unconstrained.evaluate_constrained(&genome).is_feasible());

            let direct = fleet.evaluator().evaluate(&unconstrained.plan(&genome));
            let peak = direct.fleet.peak_concurrent_import_kw.unwrap();

            // A cap below the baseline peak: violated by the exceedance.
            let tight = FleetProblem::new(&fleet).with_peak_cap_kw(peak * 0.5);
            assert_eq!(tight.n_constraints(), 1);
            let e = tight.evaluate_constrained(&genome);
            assert!(!e.is_feasible());
            assert!((e.total_violation() - peak * 0.5).abs() < 1e-9);
            // Objectives unchanged by the constraint.
            assert_eq!(e.objectives, unconstrained.evaluate(&genome));
            // Batch path reports the same violation.
            let batch = tight.evaluate_batch_constrained(std::slice::from_ref(&genome));
            assert_eq!(batch[0], e);

            // A generous cap: satisfied.
            let loose = FleetProblem::new(&fleet).with_peak_cap_kw(peak * 2.0);
            assert!(loose.evaluate_constrained(&genome).is_feasible());
        }

        #[test]
        #[should_panic(expected = "must be positive")]
        fn non_positive_cap_panics() {
            let fleet = tiny_fleet();
            let _ = FleetProblem::new(&fleet).with_peak_cap_kw(0.0);
        }
    }
}

//! In-process byte pipes — a zero-socket transport for driving the daemon
//! from tests and benches through the **real** wire format.
//!
//! [`duplex`] returns two connected endpoints; hand one to
//! [`Server::serve_connection`](crate::Server::serve_connection) on a
//! thread and drive the other like a socket. Closing an endpoint's writer
//! (by dropping it) delivers EOF to the peer's reader; dropping the
//! reader makes the peer's writes fail with `BrokenPipe` — exactly the
//! two halves of a mid-stream disconnect.

use std::io::{self, Read, Write};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};

/// The reading half of a pipe.
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

/// The writing half of a pipe. Dropping it closes the peer's read side.
#[derive(Clone)]
pub struct PipeWriter {
    tx: Sender<Vec<u8>>,
}

/// One endpoint of an in-process connection.
pub struct PipeEnd {
    /// Bytes arriving from the peer.
    pub reader: PipeReader,
    /// Bytes headed to the peer.
    pub writer: PipeWriter,
}

/// A unidirectional in-process pipe.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = channel();
    (
        PipeWriter { tx },
        PipeReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        },
    )
}

/// A connected pair of endpoints: `(client, server)`.
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let (client_w, server_r) = pipe();
    let (server_w, client_r) = pipe();
    (
        PipeEnd {
            reader: client_r,
            writer: client_w,
        },
        PipeEnd {
            reader: server_r,
            writer: server_w,
        },
    )
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.buf.len() {
            // Block for the next chunk; a closed peer is EOF.
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0),
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        // mgopt-lint: allow(panic_free) — n = out.len().min(remaining), so both ranges are in bounds
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl PipeReader {
    /// Non-blocking check whether any unread bytes are pending.
    pub fn has_pending(&mut self) -> bool {
        if self.pos < self.buf.len() {
            return true;
        }
        match self.rx.try_recv() {
            Ok(chunk) => {
                self.buf = chunk;
                self.pos = 0;
                true
            }
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => false,
        }
    }
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        self.tx
            .send(data.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe peer closed"))?;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    #[test]
    fn round_trip_lines() {
        let (client, server) = duplex();
        let mut cw = client.writer;
        writeln!(cw, "hello").unwrap();
        let mut sr = BufReader::new(server.reader);
        let mut line = String::new();
        sr.read_line(&mut line).unwrap();
        assert_eq!(line, "hello\n");
    }

    #[test]
    fn dropping_writer_is_eof_and_dropping_reader_breaks_writes() {
        let (client, server) = duplex();
        drop(client.writer);
        let mut sr = server.reader;
        let mut byte = [0u8; 1];
        assert_eq!(sr.read(&mut byte).unwrap(), 0, "EOF after client close");

        drop(client.reader);
        let mut sw = server.writer;
        assert_eq!(
            sw.write(b"x").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }
}

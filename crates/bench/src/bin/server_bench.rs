//! Emit `BENCH_server.json`: daemon throughput in studies per second with
//! several NSGA-II studies multiplexed over one connection, versus the
//! same studies answered strictly one at a time — so the cost (or gain)
//! of the concurrency layer is measured, not assumed.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin server_bench
//! ```
//!
//! The workload is 8 studies over the shared two-site paper fleet with a
//! `max_concurrent = 4` daemon, so the recorded `in_flight_peak` proves
//! at least 4 studies genuinely overlapped. Every daemon front is
//! checked bit-identical against a standalone `FleetProblem` + NSGA-II
//! run with the same seed (`agreement`), and the Accepted frames surface
//! the prepared-cache hit rate (one fleet → 2 misses, then hits only).
//!
//! A second, `multi_conn` record drives one shared daemon from 8
//! concurrent connections (2 studies each, 16 total) past the
//! process-wide `max_concurrent = 4` admission cap, plus one long
//! streamed study that is cancelled after its first `Front` — recording
//! queue depth, overlap, and that the cancelled study never produced a
//! `Done` frame. `MGOPT_FAST=1` shrinks budgets for smoke runs;
//! `bench_guard` enforces the committed floors on both `speedup` numbers
//! plus the peak/queue/agreement/cancel invariants.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use mgopt_core::wire::{
    encode_request, FleetSpec, PlanPoint, Request, RequestFrame, Response, ResponseFrame,
    StudyBudget, StudyRequest, WIRE_VERSION,
};
use mgopt_microgrid::CompositionSpace;
use mgopt_optimizer::{Nsga2Config, Nsga2Optimizer};
use mgopt_server::{pipe, Server, ServerConfig};
use serde::Serialize;

/// The artifact schema checked by `bench_guard`.
#[derive(Debug, Serialize)]
struct ServerBench {
    /// Studies per timed batch.
    studies: usize,
    population: usize,
    max_trials: usize,
    sites: usize,
    plan_space: u64,
    /// Daemon concurrency limit during the multiplexed run.
    max_concurrent: usize,
    /// High-water mark of genuinely overlapping studies (must reach
    /// `max_concurrent` for the throughput number to mean anything).
    in_flight_peak: usize,
    /// Wall-clock of the multiplexed batch, min over samples, ms.
    concurrent_ms_min: f64,
    /// Wall-clock of the same batch with each `Done` awaited before the
    /// next request, min over samples, ms.
    sequential_ms_min: f64,
    /// `studies / concurrent_ms_min`, in studies per second.
    studies_per_sec: f64,
    /// `sequential_ms_min / concurrent_ms_min`. On a single-core runner
    /// the studies are CPU-bound so this hovers near 1.0; the committed
    /// floor guards against the concurrency layer growing real overhead.
    speedup: f64,
    /// Prepared-cache traffic summed over every Accepted frame of the
    /// timed runs.
    prep_cache_hits: u64,
    prep_cache_misses: u64,
    prep_cache_hit_rate: f64,
    /// `true` when every daemon front matched its standalone run bit for
    /// bit.
    agreement: bool,
    /// The multi-connection phase (shared daemon, many sockets).
    multi_conn: MultiConnBench,
}

/// One shared daemon driven from many concurrent connections at once,
/// past the process-wide admission cap, with a mid-flight cancellation.
#[derive(Debug, Serialize)]
struct MultiConnBench {
    /// Concurrently connected clients.
    connections: usize,
    /// Completed (non-cancelled) studies across all connections.
    studies: usize,
    /// Process-wide in-flight study cap during the run.
    max_concurrent: usize,
    /// High-water mark of genuinely overlapping studies (can never
    /// exceed `max_concurrent` — `bench_guard` checks it).
    in_flight_peak: usize,
    /// High-water mark of studies waiting behind the admission cap
    /// (17 submissions against a cap of 4 must queue).
    queue_depth_peak: usize,
    /// Wall-clock of the batch, min over samples, ms.
    ms_min: f64,
    /// `studies / ms_min`, in studies per second.
    studies_per_sec: f64,
    /// Throughput relative to the single-connection sequential baseline
    /// scaled to this batch size.
    speedup: f64,
    /// `Done` frames observed for the cancelled study — must be 0; the
    /// cancelled study's terminal frame is `Cancelled`.
    cancelled_done_frames: usize,
    /// `true` when every completed front matched its standalone run bit
    /// for bit, on every connection.
    agreement: bool,
}

fn study(seed: u64, population_size: usize, max_trials: usize) -> StudyRequest {
    StudyRequest {
        fleet: FleetSpec::Preset("paper".into()),
        space: Some(CompositionSpace {
            wind_choices: vec![0, 4],
            solar_choices_kw: vec![0.0, 16_000.0],
            battery_choices_kwh: vec![0.0, 22_500.0],
        }),
        objectives: None,
        budget: StudyBudget {
            population_size,
            max_trials,
            seed,
        },
        peak_cap_kw: None,
        stream: false,
    }
}

/// The front a standalone (no daemon) run produces for `study`.
fn standalone_front(study: &StudyRequest) -> Vec<PlanPoint> {
    let fleet = study.resolved_scenario().expect("valid study").prepare();
    let problem = mgopt_core::FleetProblem::new(&fleet);
    let optimizer = Nsga2Optimizer::new(Nsga2Config {
        population_size: study.budget.population_size,
        max_trials: study.budget.max_trials,
        seed: study.budget.seed,
        ..Nsga2Config::default()
    });
    let mut last = Vec::new();
    optimizer.run_observed(&problem, &mut |view| {
        last = view
            .front
            .iter()
            .map(|(genome, eval)| PlanPoint {
                genome: genome.clone(),
                plan: genome
                    .iter()
                    .zip(&fleet.members)
                    .map(|(&g, m)| m.config.space.at(g as usize))
                    .collect(),
                objectives: eval.objectives.clone(),
                violation: eval.total_violation(),
            })
            .collect();
    });
    last
}

/// Stats of one timed batch through the daemon.
struct BatchRun {
    ms: f64,
    fronts: Vec<Vec<PlanPoint>>,
    hits: u64,
    misses: u64,
    peak: usize,
    plan_space: u64,
    sites: usize,
}

/// Drive `studies` through a fresh daemon over the in-process pipe.
/// `sequential` awaits each `Done` before the next request.
fn run_batch(studies: &[StudyRequest], max_concurrent: usize, sequential: bool) -> BatchRun {
    let server = Arc::new(Server::new(ServerConfig {
        max_concurrent,
        ..ServerConfig::default()
    }));
    let (client, server_end) = pipe::duplex();
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_connection(server_end.reader, server_end.writer))
    };
    let mut writer = client.writer;
    let mut reader = BufReader::new(client.reader);

    let mut fronts: Vec<Option<Vec<PlanPoint>>> = vec![None; studies.len()];
    let (mut hits, mut misses) = (0u64, 0u64);
    let (mut plan_space, mut sites) = (0u64, 0usize);
    let t0 = Instant::now();
    let pump = |reader: &mut BufReader<pipe::PipeReader>,
                fronts: &mut Vec<Option<Vec<PlanPoint>>>,
                hits: &mut u64,
                misses: &mut u64,
                plan_space: &mut u64,
                sites: &mut usize,
                want_done: usize| {
        let mut done = 0usize;
        while done < want_done {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "daemon hung up");
            let frame: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
            let k: usize = frame.id[1..].parse().unwrap();
            match frame.resp {
                Response::Accepted(a) => {
                    *hits += u64::from(a.prep_cache_hits);
                    *misses += u64::from(a.prep_cache_misses);
                    *plan_space = a.plan_space;
                    *sites = a.sites.len();
                }
                Response::Done(d) => {
                    fronts[k] = Some(d.front);
                    done += 1;
                }
                // Past the process-wide cap the daemon reports queueing;
                // harmless for throughput accounting.
                Response::Queued(_) => {}
                other => panic!("unexpected frame for {}: {other:?}", frame.id),
            }
        }
    };
    if sequential {
        for (k, s) in studies.iter().enumerate() {
            let frame = RequestFrame {
                v: WIRE_VERSION,
                id: format!("s{k}"),
                req: Request::Study(s.clone()),
            };
            writeln!(writer, "{}", encode_request(&frame)).unwrap();
            pump(
                &mut reader,
                &mut fronts,
                &mut hits,
                &mut misses,
                &mut plan_space,
                &mut sites,
                1,
            );
        }
    } else {
        for (k, s) in studies.iter().enumerate() {
            let frame = RequestFrame {
                v: WIRE_VERSION,
                id: format!("s{k}"),
                req: Request::Study(s.clone()),
            };
            writeln!(writer, "{}", encode_request(&frame)).unwrap();
        }
        pump(
            &mut reader,
            &mut fronts,
            &mut hits,
            &mut misses,
            &mut plan_space,
            &mut sites,
            studies.len(),
        );
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let peak = server.peak_in_flight();
    drop(writer);
    drop(reader);
    join.join().unwrap().unwrap();
    BatchRun {
        ms,
        fronts: fronts.into_iter().map(Option::unwrap).collect(),
        hits,
        misses,
        peak,
        plan_space,
        sites,
    }
}

/// Stats of one multi-connection batch through a shared daemon.
struct MultiRun {
    ms: f64,
    in_flight_peak: usize,
    queue_depth_peak: usize,
    cancelled_done_frames: usize,
    agreement: bool,
}

fn send_frame(writer: &mut pipe::PipeWriter, id: &str, req: Request) {
    let frame = RequestFrame {
        v: WIRE_VERSION,
        id: id.into(),
        req,
    };
    writeln!(writer, "{}", encode_request(&frame)).unwrap();
}

/// Drive a fresh shared daemon from `studies.len()` concurrent
/// connections, each submitting its study twice. Connection 0
/// additionally submits a long streamed `victim` study and cancels it
/// after its first `Front` frame; both of connection 0's real studies
/// are submitted *behind* the victim, so the cancellation must free a
/// permit for them to finish.
fn run_multi(
    studies: &[StudyRequest],
    expected: &[Vec<PlanPoint>],
    max_concurrent: usize,
    victim: &StudyRequest,
) -> MultiRun {
    let server = Arc::new(Server::new(ServerConfig {
        max_concurrent,
        ..ServerConfig::default()
    }));
    let t0 = Instant::now();
    let clients: Vec<_> = studies
        .iter()
        .enumerate()
        .map(|(i, study)| {
            let server = Arc::clone(&server);
            let study = study.clone();
            let expect = expected[i].clone();
            let victim = (i == 0).then(|| victim.clone());
            thread::spawn(move || {
                let (client, server_end) = pipe::duplex();
                let serve = {
                    let server = Arc::clone(&server);
                    thread::spawn(move || {
                        server.serve_connection(server_end.reader, server_end.writer)
                    })
                };
                let mut writer = client.writer;
                let mut reader = BufReader::new(client.reader);
                let has_victim = victim.is_some();
                if let Some(v) = victim {
                    send_frame(&mut writer, "victim", Request::Study(v));
                }
                send_frame(&mut writer, "a", Request::Study(study.clone()));
                send_frame(&mut writer, "b", Request::Study(study));

                let mut agreement = true;
                let mut cancelled_done = 0usize;
                let mut done_needed = 2usize;
                let mut victim_open = has_victim;
                let mut sent_cancel = false;
                while done_needed > 0 || victim_open {
                    let mut line = String::new();
                    assert!(reader.read_line(&mut line).unwrap() > 0, "daemon hung up");
                    let frame: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
                    match frame.resp {
                        Response::Accepted(_) | Response::Queued(_) => {}
                        Response::Front(_) => {
                            if frame.id == "victim" && !sent_cancel {
                                send_frame(
                                    &mut writer,
                                    "cancel-1",
                                    Request::Cancel("victim".into()),
                                );
                                sent_cancel = true;
                            }
                        }
                        Response::Done(d) => {
                            if frame.id == "victim" {
                                cancelled_done += 1;
                                victim_open = false;
                            } else {
                                agreement &= d.front == expect;
                                done_needed -= 1;
                            }
                        }
                        Response::Cancelled(_) => {
                            assert_eq!(frame.id, "victim", "Cancelled for an uncancelled study");
                            victim_open = false;
                        }
                        other => panic!("unexpected frame for {}: {other:?}", frame.id),
                    }
                }
                drop(writer);
                drop(reader);
                serve.join().unwrap().unwrap();
                (agreement, cancelled_done)
            })
        })
        .collect();

    let mut agreement = true;
    let mut cancelled_done_frames = 0usize;
    for client in clients {
        let (ok, cancelled_done) = client.join().unwrap();
        agreement &= ok;
        cancelled_done_frames += cancelled_done;
    }
    MultiRun {
        ms: t0.elapsed().as_secs_f64() * 1e3,
        in_flight_peak: server.peak_in_flight(),
        queue_depth_peak: server.queue_depth_peak(),
        cancelled_done_frames,
        agreement,
    }
}

fn main() {
    let fast = mgopt_bench::fast_mode();
    let n_studies = 8usize;
    let (population, max_trials) = if fast { (6, 18) } else { (10, 40) };
    let samples = if fast { 1 } else { 2 };
    let max_concurrent = 4usize;
    let studies: Vec<StudyRequest> = (0..n_studies as u64)
        .map(|k| study(k, population, max_trials))
        .collect();

    println!(
        "daemon throughput: {n_studies} studies, population {population}, \
         {max_trials} trials each, max_concurrent {max_concurrent}"
    );

    let expected: Vec<Vec<PlanPoint>> = studies.iter().map(standalone_front).collect();

    let mut concurrent_ms = f64::INFINITY;
    let mut sequential_ms = f64::INFINITY;
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut peak = 0usize;
    let (mut plan_space, mut sites) = (0u64, 0usize);
    let mut agreement = true;
    for _ in 0..samples {
        let conc = run_batch(&studies, max_concurrent, false);
        let seq = run_batch(&studies, 1, true);
        concurrent_ms = concurrent_ms.min(conc.ms);
        sequential_ms = sequential_ms.min(seq.ms);
        agreement &= conc.fronts == expected && seq.fronts == expected;
        hits += conc.hits + seq.hits;
        misses += conc.misses + seq.misses;
        peak = peak.max(conc.peak);
        plan_space = conc.plan_space;
        sites = conc.sites;
    }

    // Multi-connection phase: same 8 studies, one shared daemon, one
    // connection per study (each submitted twice), plus a long streamed
    // victim study cancelled after its first generation.
    let victim = {
        let mut v = study(999, population, max_trials * 10);
        v.stream = true;
        v
    };
    let mut multi_ms = f64::INFINITY;
    let mut multi_peak = 0usize;
    let mut multi_queue_peak = 0usize;
    let mut multi_cancelled_done = 0usize;
    let mut multi_agreement = true;
    for _ in 0..samples {
        let run = run_multi(&studies, &expected, max_concurrent, &victim);
        multi_ms = multi_ms.min(run.ms);
        multi_peak = multi_peak.max(run.in_flight_peak);
        multi_queue_peak = multi_queue_peak.max(run.queue_depth_peak);
        multi_cancelled_done += run.cancelled_done_frames;
        multi_agreement &= run.agreement;
    }
    let multi_studies = 2 * n_studies;
    let multi_conn = MultiConnBench {
        connections: n_studies,
        studies: multi_studies,
        max_concurrent,
        in_flight_peak: multi_peak,
        queue_depth_peak: multi_queue_peak,
        ms_min: multi_ms,
        studies_per_sec: multi_studies as f64 / (multi_ms / 1e3),
        // Sequential baseline scaled from 8 studies to this batch size.
        speedup: sequential_ms * (multi_studies as f64 / n_studies as f64) / multi_ms,
        cancelled_done_frames: multi_cancelled_done,
        agreement: multi_agreement,
    };

    let bench = ServerBench {
        studies: n_studies,
        population,
        max_trials,
        sites,
        plan_space,
        max_concurrent,
        in_flight_peak: peak,
        concurrent_ms_min: concurrent_ms,
        sequential_ms_min: sequential_ms,
        studies_per_sec: n_studies as f64 / (concurrent_ms / 1e3),
        speedup: sequential_ms / concurrent_ms,
        prep_cache_hits: hits,
        prep_cache_misses: misses,
        prep_cache_hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
        agreement,
        multi_conn,
    };

    println!(
        "  multiplexed {:9.1} ms   ({:.2} studies/s, peak {} in flight)",
        bench.concurrent_ms_min, bench.studies_per_sec, bench.in_flight_peak
    );
    println!(
        "  sequential  {:9.1} ms   (speedup {:.2}x)",
        bench.sequential_ms_min, bench.speedup
    );
    println!(
        "  prep cache  {} hits / {} misses ({:.0}% hit rate)",
        bench.prep_cache_hits,
        bench.prep_cache_misses,
        bench.prep_cache_hit_rate * 100.0
    );
    println!(
        "  agreement with standalone runs: {}",
        if bench.agreement {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    let mc = &bench.multi_conn;
    println!(
        "  multi-conn  {:9.1} ms   ({} connections, {} studies, {:.2} studies/s, \
         speedup {:.2}x)",
        mc.ms_min, mc.connections, mc.studies, mc.studies_per_sec, mc.speedup
    );
    println!(
        "              peak {} in flight (cap {}), queue depth peak {}, \
         cancelled-study Done frames {}, agreement: {}",
        mc.in_flight_peak,
        mc.max_concurrent,
        mc.queue_depth_peak,
        mc.cancelled_done_frames,
        if mc.agreement {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_server.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_server.json");
    println!("[artifact] {}", path.display());
}

//! Ablations of the modeling choices DESIGN.md calls out: how much does
//! each refinement move the paper's headline metrics?
//!
//! 1. **CI–weather coupling** (DESIGN §5 / site.rs): becalmed/overcast
//!    periods are dirtier. Ablated by regenerating the uncoupled CI trace.
//! 2. **C/L/C battery envelope** (DESIGN §5 / clc.rs): CC→CV charge taper.
//!    Ablated by pushing the taper knees to the rails (≈ constant-limit
//!    battery).
//! 3. **HDKR vs isotropic transposition** (pvwatts.rs): circumsolar
//!    brightening on the tilted array. Ablated by swapping the PV unit
//!    profile.
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin ablation
//! ```

use mgopt_gridcarbon::CarbonIntensityModel;
use mgopt_microgrid::{simulate_year, Composition, SimConfig};
use mgopt_sam::pvwatts::{PvSystem, PvSystemParams, TranspositionModel};
use mgopt_sam::GenerationModel;
use mgopt_storage::ClcParams;

fn report(
    label: &str,
    scenario: &mgopt_core::PreparedScenario,
    cfg: &SimConfig,
    comps: &[Composition],
) {
    print!("  {label:<34}");
    for comp in comps {
        let r = simulate_year(&scenario.data, &scenario.load, comp, cfg);
        print!(
            "  {:>7.2} t/d {:>6.2}%",
            r.metrics.operational_t_per_day,
            r.metrics.coverage_pct()
        );
    }
    println!();
}

fn main() {
    let baseline = mgopt_bench::houston();
    let cfg = SimConfig::default();
    // Reference compositions: the paper's wind-first row and a mixed row.
    let comps = [
        Composition::new(4, 0.0, 7_500.0),
        Composition::new(3, 8_000.0, 22_500.0),
    ];

    println!("Ablation study — Houston, (12,0,7.5) and (9,8,22.5)");
    println!(
        "  {:<34}  {:>20}  {:>20}",
        "variant", "(12,0,7.5)", "(9,8,22.5)"
    );
    report("full model", &baseline, &cfg, &comps);

    // 1. CI-weather coupling off: regenerate the raw calibrated CI trace.
    let mut uncoupled = baseline.clone();
    uncoupled.data.ci_g_per_kwh = CarbonIntensityModel::for_region(uncoupled.data.site.grid_region)
        .generate(uncoupled.data.step(), uncoupled.config.seed);
    report("without CI-weather coupling", &uncoupled, &cfg, &comps);

    // 2. Constant-limit battery: taper knees pushed to the rails.
    let flat_battery = SimConfig {
        battery: ClcParams {
            charge_taper_soc: 0.999,
            discharge_taper_width: 1e-3,
            ..ClcParams::default()
        },
        ..cfg.clone()
    };
    report(
        "without C/L/C charge taper",
        &baseline,
        &flat_battery,
        &comps,
    );

    // 3. HDKR transposition instead of isotropic.
    let mut hdkr = baseline.clone();
    let lat = hdkr.data.site.climate.location.latitude_deg;
    let pv = PvSystem::new(PvSystemParams {
        transposition: TranspositionModel::Hdkr,
        ..PvSystemParams::defaults(1_000.0, lat)
    });
    hdkr.data.pv_unit_kw = pv.simulate(&hdkr.data.weather).scaled(1.0 / 1_000.0);
    report("HDKR transposition", &hdkr, &cfg, &comps);

    println!();
    println!("Reading: the CI-weather coupling is the load-bearing refinement —");
    println!("removing it cuts reported operational emissions ~17% at identical");
    println!("coverage (imports no longer land in dirty becalmed hours). The");
    println!("C/L/C taper is metric-neutral at these C/2-rated compositions");
    println!("(charging rarely saturates), and HDKR shifts solar yield by well");
    println!("under a percent. No conclusion of the paper depends on the latter");
    println!("two; the CI coupling is what keeps Table 1/2 emission rows honest.");
}
